package apps

import (
	"fmt"
	"math"

	"uqsim/internal/cluster"
	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

// withName returns a shallow copy of bp under a new service name, letting
// one model (e.g. Memcached) back several deployments (usermc, postmc, …).
func withName(bp *service.Blueprint, name string) *service.Blueprint {
	c := *bp
	c.Name = name
	return &c
}

// paperFreq returns the Table II DVFS range.
func paperFreq() cluster.FreqSpec { return cluster.DefaultFreqSpec }

// TwoTierConfig parameterizes the NGINX→memcached validation (Fig. 5).
type TwoTierConfig struct {
	Seed uint64
	// QPS is the open-loop target (ignored when Pattern is set).
	QPS float64
	// Pattern optionally overrides the constant-rate load (e.g. the
	// diurnal pattern of the power study, Fig. 15).
	Pattern workload.Pattern
	// NginxCores is the NGINX process count (each pinned to a core).
	NginxCores int
	// MemcachedThreads is the memcached thread count (each on a core).
	MemcachedThreads int
	// Connections is the number of client http/1.1 connections
	// (the paper's wrk2 uses 320).
	Connections int
	// Network enables the per-machine interrupt-processing service.
	Network bool
	// NoBlocking drops the http/1.1 connection pools (ablation: without
	// connection-level blocking, concurrency is unbounded and the
	// saturated tail explodes much faster).
	NoBlocking bool
}

// TwoTier assembles the two-tier NGINX→memcached application of Fig. 4(a):
// NGINX receives the request over http/1.1 (blocking the connection),
// queries memcached, and returns the value to the client.
func TwoTier(cfg TwoTierConfig) (*sim.Sim, error) {
	if cfg.NginxCores <= 0 {
		cfg.NginxCores = 8
	}
	if cfg.MemcachedThreads <= 0 {
		cfg.MemcachedThreads = 4
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 320
	}
	s := sim.New(sim.Options{Seed: cfg.Seed})
	s.AddMachine("frontend", 20, paperFreq())
	s.AddMachine("cache", 20, paperFreq())
	if _, err := s.Deploy(Nginx(), sim.RoundRobin,
		sim.Placement{Machine: "frontend", Cores: cfg.NginxCores}); err != nil {
		return nil, err
	}
	if _, err := s.Deploy(Memcached(), sim.RoundRobin,
		sim.Placement{Machine: "cache", Cores: cfg.MemcachedThreads}); err != nil {
		return nil, err
	}
	if cfg.Network {
		if err := s.EnableNetwork(DefaultNetwork()); err != nil {
			return nil, err
		}
	}
	topo := &graph.Topology{
		Trees: []graph.Tree{{
			Name: "get", Weight: 1, Root: 0,
			Nodes: []graph.Node{
				{ID: 0, Service: "nginx", ServicePath: "rx", Instance: -1,
					Children: []int{1}, AcquireConn: []string{"client:nginx"}},
				{ID: 1, Service: "memcached", ServicePath: "memcached_read", Instance: -1,
					Children:    []int{2},
					AcquireConn: []string{"nginx:memcached"},
					ReleaseConn: []string{"nginx:memcached"}},
				{ID: 2, Service: "nginx", ServicePath: "tx", Instance: -1,
					ReleaseConn: []string{"client:nginx"}},
			},
		}},
		Pools: []graph.ConnPool{
			{Name: "client:nginx", Capacity: cfg.Connections},
			{Name: "nginx:memcached", Capacity: 64},
		},
	}
	if cfg.NoBlocking {
		for i := range topo.Trees[0].Nodes {
			topo.Trees[0].Nodes[i].AcquireConn = nil
			topo.Trees[0].Nodes[i].ReleaseConn = nil
		}
		topo.Pools = nil
	}
	if err := s.SetTopology(topo); err != nil {
		return nil, err
	}
	pattern := cfg.Pattern
	if pattern == nil {
		pattern = workload.ConstantRate(cfg.QPS)
	}
	s.SetClient(sim.ClientConfig{
		Pattern:     pattern,
		SizeKB:      dist.NewExponential(1), // exp value sizes (paper §IV-A)
		Connections: cfg.Connections,
	})
	return s, nil
}

// ThreeTierConfig parameterizes the NGINX→memcached→MongoDB validation
// (Fig. 6).
type ThreeTierConfig struct {
	Seed uint64
	QPS  float64
	// CacheHitProb is the memcached hit probability (miss → MongoDB
	// with write-allocate back into memcached).
	CacheHitProb float64
	// MongoMemoryProb is the probability a MongoDB query is served from
	// resident memory rather than disk (the paper's path state machine).
	MongoMemoryProb  float64
	NginxCores       int
	MemcachedThreads int
	Connections      int
	Network          bool
}

// ThreeTier assembles the three-tier application of Fig. 4(b).
func ThreeTier(cfg ThreeTierConfig) (*sim.Sim, error) {
	if cfg.NginxCores <= 0 {
		cfg.NginxCores = 8
	}
	if cfg.MemcachedThreads <= 0 {
		cfg.MemcachedThreads = 2
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 320
	}
	if cfg.CacheHitProb <= 0 {
		cfg.CacheHitProb = 0.7
	}
	if cfg.MongoMemoryProb <= 0 {
		cfg.MongoMemoryProb = 0.3
	}
	s := sim.New(sim.Options{Seed: cfg.Seed})
	s.AddMachine("frontend", 20, paperFreq())
	s.AddMachine("cache", 20, paperFreq())
	db := s.AddMachine("db", 20, paperFreq())
	db.AddPool(DiskPool, 2) // 2× 7.2K RPM SATA (Table II)
	if _, err := s.Deploy(Nginx(), sim.RoundRobin,
		sim.Placement{Machine: "frontend", Cores: cfg.NginxCores}); err != nil {
		return nil, err
	}
	if _, err := s.Deploy(Memcached(), sim.RoundRobin,
		sim.Placement{Machine: "cache", Cores: cfg.MemcachedThreads}); err != nil {
		return nil, err
	}
	if _, err := s.Deploy(MongoDB(cfg.MongoMemoryProb, 16), sim.RoundRobin,
		sim.Placement{Machine: "db", Cores: 4}); err != nil {
		return nil, err
	}
	if cfg.Network {
		if err := s.EnableNetwork(DefaultNetwork()); err != nil {
			return nil, err
		}
	}
	pools := []graph.ConnPool{
		{Name: "client:nginx", Capacity: cfg.Connections},
		{Name: "nginx:memcached", Capacity: 64},
		{Name: "memcached:mongodb", Capacity: 64},
	}
	hit := graph.Tree{
		Name: "cache_hit", Weight: cfg.CacheHitProb, Root: 0,
		Nodes: []graph.Node{
			{ID: 0, Service: "nginx", ServicePath: "rx", Instance: -1,
				Children: []int{1}, AcquireConn: []string{"client:nginx"}},
			{ID: 1, Service: "memcached", ServicePath: "memcached_read", Instance: -1,
				Children:    []int{2},
				AcquireConn: []string{"nginx:memcached"},
				ReleaseConn: []string{"nginx:memcached"}},
			{ID: 2, Service: "nginx", ServicePath: "tx", Instance: -1,
				ReleaseConn: []string{"client:nginx"}},
		},
	}
	// Miss: read cache (miss) → MongoDB → write-allocate into cache →
	// respond.
	miss := graph.Tree{
		Name: "cache_miss", Weight: 1 - cfg.CacheHitProb, Root: 0,
		Nodes: []graph.Node{
			{ID: 0, Service: "nginx", ServicePath: "rx", Instance: -1,
				Children: []int{1}, AcquireConn: []string{"client:nginx"}},
			{ID: 1, Service: "memcached", ServicePath: "memcached_read", Instance: -1,
				Children:    []int{2},
				AcquireConn: []string{"nginx:memcached"},
				ReleaseConn: []string{"nginx:memcached"}},
			{ID: 2, Service: "mongodb", Instance: -1,
				Children:    []int{3},
				AcquireConn: []string{"memcached:mongodb"},
				ReleaseConn: []string{"memcached:mongodb"}},
			{ID: 3, Service: "memcached", ServicePath: "memcached_write", Instance: -1,
				Children:    []int{4},
				AcquireConn: []string{"nginx:memcached"},
				ReleaseConn: []string{"nginx:memcached"}},
			{ID: 4, Service: "nginx", ServicePath: "tx", Instance: -1,
				ReleaseConn: []string{"client:nginx"}},
		},
	}
	if err := s.SetTopology(&graph.Topology{Trees: []graph.Tree{hit, miss}, Pools: pools}); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{
		Pattern:     workload.ConstantRate(cfg.QPS),
		SizeKB:      dist.NewExponential(1),
		Connections: cfg.Connections,
	})
	return s, nil
}

// ScaleOutConfig parameterizes the load-balancing (Fig. 8) and fanout
// (Fig. 10) scenarios: an NGINX proxy in front of N single-core NGINX
// webservers, with four interrupt cores per machine.
type ScaleOutConfig struct {
	Seed    uint64
	QPS     float64
	Servers int
	// WebserversPerMachine packs leaves onto machines (default 4).
	WebserversPerMachine int
	Connections          int
	// NoNetwork disables interrupt processing (ablation: without it the
	// 16-way scale-out keeps scaling linearly instead of saturating the
	// proxy machine's interrupt cores).
	NoNetwork bool
}

func (c *ScaleOutConfig) defaults() {
	if c.Servers <= 0 {
		c.Servers = 4
	}
	if c.WebserversPerMachine <= 0 {
		c.WebserversPerMachine = 4
	}
	if c.Connections <= 0 {
		c.Connections = 2048
	}
}

// scaleOutBase builds the shared cluster + deployments of both scenarios.
func scaleOutBase(cfg *ScaleOutConfig, fanout int) (*sim.Sim, error) {
	cfg.defaults()
	s := sim.New(sim.Options{Seed: cfg.Seed})
	s.AddMachine("lb", 20, paperFreq())
	nMachines := (cfg.Servers + cfg.WebserversPerMachine - 1) / cfg.WebserversPerMachine
	var placements []sim.Placement
	for i := 0; i < nMachines; i++ {
		s.AddMachine(fmt.Sprintf("web%d", i), 20, paperFreq())
	}
	for i := 0; i < cfg.Servers; i++ {
		placements = append(placements, sim.Placement{
			Machine: fmt.Sprintf("web%d", i/cfg.WebserversPerMachine),
			Cores:   1,
		})
	}
	if _, err := s.Deploy(NginxProxy(fanout), sim.RoundRobin,
		sim.Placement{Machine: "lb", Cores: 2}); err != nil {
		return nil, err
	}
	if _, err := s.Deploy(Nginx(), sim.RoundRobin, placements...); err != nil {
		return nil, err
	}
	if !cfg.NoNetwork {
		if err := s.EnableNetwork(DefaultNetwork()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// LoadBalanced assembles Fig. 7/8: the proxy forwards each request to one
// webserver, round-robin.
func LoadBalanced(cfg ScaleOutConfig) (*sim.Sim, error) {
	s, err := scaleOutBase(&cfg, 1)
	if err != nil {
		return nil, err
	}
	topo := &graph.Topology{
		Trees: []graph.Tree{{
			Name: "lb", Weight: 1, Root: 0,
			Nodes: []graph.Node{
				{ID: 0, Service: "nginx_proxy", ServicePath: "rx", Instance: -1,
					Children: []int{1}, AcquireConn: []string{"client:proxy"}},
				{ID: 1, Service: "nginx", ServicePath: "serve", Instance: -1,
					Children: []int{2}},
				{ID: 2, Service: "nginx_proxy", ServicePath: "join", Instance: -1,
					ReleaseConn: []string{"client:proxy"}},
			},
		}},
		Pools: []graph.ConnPool{{Name: "client:proxy", Capacity: cfg.Connections}},
	}
	if err := s.SetTopology(topo); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{
		Pattern:     workload.ConstantRate(cfg.QPS),
		SizeKB:      dist.NewDeterministic(612.0 / 1024), // 612-byte page
		Connections: cfg.Connections,
	})
	return s, nil
}

// Fanout assembles Fig. 9/10: the proxy forwards each request to all N
// webservers and synchronizes their responses before replying.
func Fanout(cfg ScaleOutConfig) (*sim.Sim, error) {
	s, err := scaleOutBase(&cfg, cfg.Servers)
	if err != nil {
		return nil, err
	}
	n := cfg.Servers
	nodes := make([]graph.Node, 0, n+2)
	nodes = append(nodes, graph.Node{
		ID: 0, Service: "nginx_proxy", ServicePath: "rx", Instance: -1,
		Children: childRange(1, n), AcquireConn: []string{"client:proxy"},
	})
	for i := 0; i < n; i++ {
		nodes = append(nodes, graph.Node{
			ID: 1 + i, Service: "nginx", ServicePath: "serve", Instance: i,
			Children: []int{n + 1},
		})
	}
	nodes = append(nodes, graph.Node{
		ID: n + 1, Service: "nginx_proxy", ServicePath: "join", Instance: -1,
		ReleaseConn: []string{"client:proxy"},
	})
	topo := &graph.Topology{
		Trees: []graph.Tree{{Name: "fanout", Weight: 1, Root: 0, Nodes: nodes}},
		Pools: []graph.ConnPool{{Name: "client:proxy", Capacity: cfg.Connections}},
	}
	if err := s.SetTopology(topo); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{
		Pattern:     workload.ConstantRate(cfg.QPS),
		SizeKB:      dist.NewDeterministic(612.0 / 1024),
		Connections: cfg.Connections,
	})
	return s, nil
}

func childRange(from, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = from + i
	}
	return out
}

// ThriftHelloConfig parameterizes the RPC validation (Fig. 12a).
type ThriftHelloConfig struct {
	Seed        uint64
	QPS         float64
	Cores       int
	Connections int
	Network     bool
}

// ThriftHello assembles the hello-world Thrift client/server pair: all
// processing is RPC framework overhead, saturating just above 50 kQPS.
func ThriftHello(cfg ThriftHelloConfig) (*sim.Sim, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 128
	}
	s := sim.New(sim.Options{Seed: cfg.Seed})
	s.AddMachine("srv", 20, paperFreq())
	if _, err := s.Deploy(ThriftServer("thrift", 15), sim.RoundRobin,
		sim.Placement{Machine: "srv", Cores: cfg.Cores}); err != nil {
		return nil, err
	}
	if cfg.Network {
		if err := s.EnableNetwork(DefaultNetwork()); err != nil {
			return nil, err
		}
	}
	topo := &graph.Topology{
		Trees: []graph.Tree{{
			Name: "hello", Weight: 1, Root: 0,
			Nodes: []graph.Node{{
				ID: 0, Service: "thrift", ServicePath: "call", Instance: -1,
				AcquireConn: []string{"client:thrift"},
				ReleaseConn: []string{"client:thrift"},
			}},
		}},
		Pools: []graph.ConnPool{{Name: "client:thrift", Capacity: cfg.Connections}},
	}
	if err := s.SetTopology(topo); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{
		Pattern:     workload.ConstantRate(cfg.QPS),
		SizeKB:      dist.NewDeterministic(0.05), // "Hello World" payload
		Connections: cfg.Connections,
	})
	return s, nil
}

// SingleService wraps one blueprint as a standalone open-loop scenario
// (used by the BigHouse comparison of Fig. 13, where each application is
// driven in isolation).
func SingleService(bp *service.Blueprint, path string, cores int, qps float64, seed uint64, sizeKB dist.Sampler) (*sim.Sim, error) {
	s := sim.New(sim.Options{Seed: seed})
	s.AddMachine("m0", 20, cluster.FreqSpec{})
	if _, err := s.Deploy(bp, sim.RoundRobin, sim.Placement{Machine: "m0", Cores: cores}); err != nil {
		return nil, err
	}
	topo := graph.Linear("single", bp.Name)
	topo.Trees[0].Nodes[0].ServicePath = path
	if err := s.SetTopology(topo); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{
		Pattern:     workload.ConstantRate(qps),
		SizeKB:      sizeKB,
		Connections: 64,
	})
	return s, nil
}

// TailAtScaleConfig parameterizes the Fig. 14 study.
type TailAtScaleConfig struct {
	Seed uint64
	QPS  float64
	// Servers is the cluster size / fanout width (5 … 1000).
	Servers int
	// SlowFraction of servers run 10× slower.
	SlowFraction float64
	// SlowFactor scales the slow servers' mean (default 10).
	SlowFactor float64
	// MeanServiceUs is the leaf mean processing time (default 1000 =
	// 1ms, per the paper).
	MeanServiceUs float64
}

// TailAtScale assembles the tail-at-scale fanout study: a request fans out
// to every server in the cluster and completes when the last one responds;
// a fraction of servers is 10× slower.
func TailAtScale(cfg TailAtScaleConfig) (*sim.Sim, error) {
	if cfg.Servers <= 0 {
		cfg.Servers = 100
	}
	if cfg.SlowFactor <= 0 {
		cfg.SlowFactor = 10
	}
	if cfg.MeanServiceUs <= 0 {
		cfg.MeanServiceUs = 1000
	}
	n := cfg.Servers
	nSlow := int(math.Round(cfg.SlowFraction * float64(n)))
	s := sim.New(sim.Options{Seed: cfg.Seed})
	const perMachine = 32
	nMachines := (n + perMachine - 1) / perMachine
	for i := 0; i < nMachines; i++ {
		s.AddMachine(fmt.Sprintf("rack%d", i), perMachine, cluster.FreqSpec{})
	}
	s.AddMachine("rootm", 8, cluster.FreqSpec{})
	place := func(i int) sim.Placement {
		return sim.Placement{Machine: fmt.Sprintf("rack%d", i/perMachine), Cores: 1}
	}
	var fastPl, slowPl []sim.Placement
	for i := 0; i < n; i++ {
		if i < nSlow {
			slowPl = append(slowPl, place(i))
		} else {
			fastPl = append(fastPl, place(i))
		}
	}
	if _, err := s.Deploy(service.SingleStage("root", dist.NewDeterministic(0.5*us)),
		sim.RoundRobin, sim.Placement{Machine: "rootm", Cores: 4}); err != nil {
		return nil, err
	}
	if len(fastPl) > 0 {
		if _, err := s.Deploy(SimpleServer("leaf", cfg.MeanServiceUs), sim.RoundRobin, fastPl...); err != nil {
			return nil, err
		}
	}
	if len(slowPl) > 0 {
		if _, err := s.Deploy(SimpleServer("slowleaf", cfg.MeanServiceUs*cfg.SlowFactor),
			sim.RoundRobin, slowPl...); err != nil {
			return nil, err
		}
	}
	nodes := make([]graph.Node, 0, n+2)
	nodes = append(nodes, graph.Node{ID: 0, Service: "root", Instance: -1, Children: childRange(1, n)})
	for i := 0; i < n; i++ {
		svc, inst := "leaf", i-nSlow
		if i < nSlow {
			svc, inst = "slowleaf", i
		}
		nodes = append(nodes, graph.Node{
			ID: 1 + i, Service: svc, Instance: inst, Children: []int{n + 1},
		})
	}
	nodes = append(nodes, graph.Node{ID: n + 1, Service: "root", Instance: -1})
	topo := &graph.Topology{Trees: []graph.Tree{{Name: "fan", Weight: 1, Root: 0, Nodes: nodes}}}
	if err := s.SetTopology(topo); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(cfg.QPS), Connections: 256})
	return s, nil
}
