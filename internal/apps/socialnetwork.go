package apps

import (
	"fmt"

	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

// SocialNetworkConfig parameterizes the end-to-end Social Network
// application of Fig. 11/12b: a Thrift frontend queries the User and Post
// services in parallel, synchronizes their responses, optionally extracts
// embedded media via the Media service, composes the reply, and returns it.
// Each backend service caches in memcached and persists in MongoDB.
type SocialNetworkConfig struct {
	Seed uint64
	QPS  float64
	// CacheHitProb is each memcached tier's hit probability (miss →
	// the corresponding MongoDB). Default 0.85.
	CacheHitProb float64
	// MediaProb is the probability a post embeds media. Default 0.5.
	MediaProb float64
	// MongoMemoryProb is MongoDB's resident-working-set probability.
	MongoMemoryProb float64
	Connections     int
	Network         bool

	// WithWrites extends the read-only workload the paper evaluates
	// ("we focus on the [browse] function for simplicity") with the
	// write functionality its description mentions: composing posts,
	// following users, and timeline reads. Ratios are relative weights;
	// zero values take the defaults below when WithWrites is set.
	WithWrites        bool
	ReadPostWeight    float64 // default 0.60
	ReadTimelineWght  float64 // default 0.20
	ComposePostWeight float64 // default 0.15
	FollowWeight      float64 // default 0.05
}

// snBranch appends one backend branch (service → its memcached → maybe its
// MongoDB) to nodes, returning the updated slice and the branch's last
// node ID. Every branch node chains toward joinID.
type snBuilder struct {
	nodes []graph.Node
}

func (b *snBuilder) add(n graph.Node) int {
	n.ID = len(b.nodes)
	b.nodes = append(b.nodes, n)
	return n.ID
}

func (b *snBuilder) chain(from, to int) {
	b.nodes[from].Children = append(b.nodes[from].Children, to)
}

// branch builds svc → svcmc [→ svcmongo] and returns (first, last) IDs.
func (b *snBuilder) branch(svc string, hit bool) (first, last int) {
	s := b.add(graph.Node{Service: svc, ServicePath: "call", Instance: -1})
	mc := b.add(graph.Node{Service: svc + "mc", ServicePath: "memcached_read", Instance: -1})
	b.chain(s, mc)
	last = mc
	if !hit {
		mg := b.add(graph.Node{Service: svc + "mongo", Instance: -1})
		b.chain(mc, mg)
		last = mg
	}
	return s, last
}

// snTree builds one full path tree for a (userHit, postHit, media)
// combination. media is "none", "hit", or "miss".
func snTree(name string, weight float64, userHit, postHit bool, media string) graph.Tree {
	b := &snBuilder{}
	root := b.add(graph.Node{
		Service: "frontend", ServicePath: "call", Instance: -1,
		AcquireConn: []string{"client:frontend"},
	})
	uFirst, uLast := b.branch("user", userHit)
	pFirst, pLast := b.branch("post", postHit)
	b.chain(root, uFirst)
	b.chain(root, pFirst)
	// The frontend synchronizes both branches (fan-in 2).
	join := b.add(graph.Node{Service: "frontend", ServicePath: "call", Instance: -1})
	b.chain(uLast, join)
	b.chain(pLast, join)
	tail := join
	if media != "none" {
		mFirst, mLast := b.branch("media", media == "hit")
		b.chain(join, mFirst)
		// Frontend composes the final response after media resolves.
		compose := b.add(graph.Node{Service: "frontend", ServicePath: "call", Instance: -1})
		b.chain(mLast, compose)
		tail = compose
	}
	b.nodes[tail].ReleaseConn = []string{"client:frontend"}
	return graph.Tree{Name: name, Weight: weight, Root: root, Nodes: b.nodes}
}

// snTimelineTree builds a timeline read: frontend → timeline service →
// its cache [→ its store] → frontend reply.
func snTimelineTree(weight float64, hit bool) graph.Tree {
	b := &snBuilder{}
	root := b.add(graph.Node{
		Service: "frontend", ServicePath: "call", Instance: -1,
		AcquireConn: []string{"client:frontend"},
	})
	first, last := b.branch("timeline", hit)
	b.chain(root, first)
	reply := b.add(graph.Node{Service: "frontend", ServicePath: "call", Instance: -1,
		ReleaseConn: []string{"client:frontend"}})
	b.chain(last, reply)
	name := "timeline-hit"
	if !hit {
		name = "timeline-miss"
	}
	return graph.Tree{Name: name, Weight: weight, Root: root, Nodes: b.nodes}
}

// snComposeTree builds a post composition: frontend → post service →
// {cache write, store write, timeline cache update} in parallel →
// synchronized frontend reply.
func snComposeTree(weight float64) graph.Tree {
	b := &snBuilder{}
	root := b.add(graph.Node{
		Service: "frontend", ServicePath: "call", Instance: -1,
		AcquireConn: []string{"client:frontend"},
	})
	post := b.add(graph.Node{Service: "post", ServicePath: "call", Instance: -1})
	b.chain(root, post)
	mcW := b.add(graph.Node{Service: "postmc", ServicePath: "memcached_write", Instance: -1})
	mongoW := b.add(graph.Node{Service: "postmongo", Instance: -1})
	tlW := b.add(graph.Node{Service: "timelinemc", ServicePath: "memcached_write", Instance: -1})
	b.chain(post, mcW)
	b.chain(post, mongoW)
	b.chain(post, tlW)
	reply := b.add(graph.Node{Service: "frontend", ServicePath: "call", Instance: -1,
		ReleaseConn: []string{"client:frontend"}})
	b.chain(mcW, reply)
	b.chain(mongoW, reply)
	b.chain(tlW, reply)
	return graph.Tree{Name: "compose", Weight: weight, Root: root, Nodes: b.nodes}
}

// snFollowTree builds a follow edge update: frontend → user service →
// user store write → frontend reply.
func snFollowTree(weight float64) graph.Tree {
	b := &snBuilder{}
	root := b.add(graph.Node{
		Service: "frontend", ServicePath: "call", Instance: -1,
		AcquireConn: []string{"client:frontend"},
	})
	user := b.add(graph.Node{Service: "user", ServicePath: "call", Instance: -1})
	mongoW := b.add(graph.Node{Service: "usermongo", Instance: -1})
	b.chain(root, user)
	b.chain(user, mongoW)
	reply := b.add(graph.Node{Service: "frontend", ServicePath: "call", Instance: -1,
		ReleaseConn: []string{"client:frontend"}})
	b.chain(mongoW, reply)
	return graph.Tree{Name: "follow", Weight: weight, Root: root, Nodes: b.nodes}
}

// SocialNetwork assembles the Social Network application.
func SocialNetwork(cfg SocialNetworkConfig) (*sim.Sim, error) {
	if cfg.CacheHitProb <= 0 {
		cfg.CacheHitProb = 0.85
	}
	if cfg.MediaProb <= 0 {
		cfg.MediaProb = 0.5
	}
	if cfg.MongoMemoryProb <= 0 {
		cfg.MongoMemoryProb = 0.3
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 512
	}
	tiers := []string{"user", "post", "media"}
	if cfg.WithWrites {
		tiers = append(tiers, "timeline")
	}
	s := sim.New(sim.Options{Seed: cfg.Seed})
	s.AddMachine("front", 20, paperFreq())
	for _, tier := range tiers {
		m := s.AddMachine(tier+"m", 20, paperFreq())
		m.AddPool(DiskPool, 2)
	}
	if _, err := s.Deploy(ThriftServer("frontend", 25), sim.RoundRobin,
		sim.Placement{Machine: "front", Cores: 4}); err != nil {
		return nil, err
	}
	for _, tier := range tiers {
		mach := tier + "m"
		if _, err := s.Deploy(ThriftServer(tier, 15), sim.RoundRobin,
			sim.Placement{Machine: mach, Cores: 2}); err != nil {
			return nil, err
		}
		if _, err := s.Deploy(withName(Memcached(), tier+"mc"), sim.RoundRobin,
			sim.Placement{Machine: mach, Cores: 2}); err != nil {
			return nil, err
		}
		if _, err := s.Deploy(withName(MongoDB(cfg.MongoMemoryProb, 8), tier+"mongo"), sim.RoundRobin,
			sim.Placement{Machine: mach, Cores: 4}); err != nil {
			return nil, err
		}
	}
	if cfg.Network {
		if err := s.EnableNetwork(DefaultNetwork()); err != nil {
			return nil, err
		}
	}

	h := cfg.CacheHitProb
	miss := 1 - h
	readWeight := 1.0
	if cfg.WithWrites {
		if cfg.ReadPostWeight <= 0 {
			cfg.ReadPostWeight = 0.60
		}
		if cfg.ReadTimelineWght <= 0 {
			cfg.ReadTimelineWght = 0.20
		}
		if cfg.ComposePostWeight <= 0 {
			cfg.ComposePostWeight = 0.15
		}
		if cfg.FollowWeight <= 0 {
			cfg.FollowWeight = 0.05
		}
		readWeight = cfg.ReadPostWeight
	}
	var trees []graph.Tree
	if cfg.WithWrites {
		trees = append(trees,
			snTimelineTree(cfg.ReadTimelineWght*h, true),
			snTimelineTree(cfg.ReadTimelineWght*miss, false),
			snComposeTree(cfg.ComposePostWeight),
			snFollowTree(cfg.FollowWeight),
		)
	}
	for _, u := range []struct {
		hit bool
		p   float64
	}{{true, h}, {false, miss}} {
		for _, p := range []struct {
			hit bool
			p   float64
		}{{true, h}, {false, miss}} {
			for _, m := range []struct {
				kind string
				p    float64
			}{
				{"none", 1 - cfg.MediaProb},
				{"hit", cfg.MediaProb * h},
				{"miss", cfg.MediaProb * miss},
			} {
				w := readWeight * u.p * p.p * m.p
				if w <= 0 {
					continue
				}
				name := fmt.Sprintf("u%v-p%v-m%s", u.hit, p.hit, m.kind)
				trees = append(trees, snTree(name, w, u.hit, p.hit, m.kind))
			}
		}
	}
	topo := &graph.Topology{
		Trees: trees,
		Pools: []graph.ConnPool{{Name: "client:frontend", Capacity: cfg.Connections}},
	}
	if err := s.SetTopology(topo); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{
		Pattern:     workload.ConstantRate(cfg.QPS),
		SizeKB:      dist.NewExponential(2),
		Connections: cfg.Connections,
	})
	return s, nil
}
