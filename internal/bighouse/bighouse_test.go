package bighouse

import (
	"math"
	"testing"

	"uqsim/internal/analytic"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/rng"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Servers: 0}, 0, des.Second); err == nil {
		t.Fatal("no servers should fail")
	}
	if _, err := Run(Config{Servers: 1}, 0, des.Second); err == nil {
		t.Fatal("missing distributions should fail")
	}
}

func TestMM1AgainstTheory(t *testing.T) {
	lambda, mu := 7000.0, 10000.0
	res, err := Run(Config{
		Seed:         1,
		Servers:      1,
		Service:      dist.NewExponential(1e9 / mu),
		Interarrival: dist.NewExponential(1e9 / lambda),
	}, 2*des.Second, 20*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := analytic.MM1MeanSojourn(lambda, mu)
	got := res.Latency.Mean().Seconds()
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("M/M/1 mean %v, want ≈%v", got, want)
	}
}

func TestMMkAgainstTheory(t *testing.T) {
	lambda, mu, k := 30000.0, 10000.0, 4
	res, err := Run(Config{
		Seed:         2,
		Servers:      k,
		Service:      dist.NewExponential(1e9 / mu),
		Interarrival: dist.NewExponential(1e9 / lambda),
	}, 2*des.Second, 20*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := analytic.MMkMeanSojourn(lambda, mu, k)
	got := res.Latency.Mean().Seconds()
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("M/M/%d mean %v, want ≈%v", k, got, want)
	}
}

func TestSaturationPinsAtCapacity(t *testing.T) {
	// Offered 2× capacity: goodput ≈ kµ and backlog grows.
	res, err := Run(Config{
		Seed:         3,
		Servers:      2,
		Service:      dist.NewDeterministic(float64(100 * des.Microsecond)),
		Interarrival: dist.NewExponential(1e9 / 40000),
	}, 0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.GoodputQPS-20000) > 500 {
		t.Fatalf("goodput %v, want ≈20000", res.GoodputQPS)
	}
	if res.Backlog < 10000 {
		t.Fatalf("backlog %d, want large", res.Backlog)
	}
}

func TestWarmupExcluded(t *testing.T) {
	res, err := Run(Config{
		Seed:         4,
		Servers:      1,
		Service:      dist.NewDeterministic(float64(10 * des.Microsecond)),
		Interarrival: dist.NewDeterministic(float64(des.Millisecond)),
	}, 500*des.Millisecond, 500*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals < 450 || res.Arrivals > 550 {
		t.Fatalf("measured arrivals %d, want ≈500", res.Arrivals)
	}
}

func TestSingleStageService(t *testing.T) {
	s := SingleStageService(
		dist.NewDeterministic(100),
		nil,
		dist.NewDeterministic(50),
	)
	r := rng.New(5)
	if got := s.Sample(r); got != 150 {
		t.Fatalf("sum sample %v", got)
	}
	if got := s.Mean(); got != 150 {
		t.Fatalf("sum mean %v", got)
	}
}
