// Package bighouse re-implements the modelling approach of BigHouse
// (Meisner et al., ISPASS 2012), the baseline µqSim compares against in
// Fig. 13: each application is a single-stage G/G/k queue characterized
// only by an interarrival distribution and a service distribution. There
// are no intra-service stages, so costs that a real event-driven server
// amortizes across batched requests (epoll) are charged to every request —
// the modelling error the comparison demonstrates.
package bighouse

import (
	"fmt"

	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/queueing"

	"uqsim/internal/job"
	"uqsim/internal/rng"
	"uqsim/internal/stats"
)

// Config describes one BigHouse-style simulation.
type Config struct {
	Seed uint64
	// Servers is k, the number of parallel servers (threads/processes).
	Servers int
	// Service samples the total per-request service time in ns.
	Service dist.Sampler
	// Interarrival samples request gaps in ns. Use dist.NewExponential
	// (1e9/QPS) for a Poisson open loop.
	Interarrival dist.Sampler
}

// Result reports a run's measurements.
type Result struct {
	Arrivals    uint64
	Completions uint64
	GoodputQPS  float64
	Latency     *stats.LatencyHist
	// Backlog is the queue length at the horizon (large beyond
	// saturation).
	Backlog int
}

// Run simulates the G/G/k queue for warmup+duration of virtual time,
// measuring after warmup.
func Run(cfg Config, warmup, duration des.Time) (*Result, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("bighouse: need at least one server")
	}
	if cfg.Service == nil || cfg.Interarrival == nil {
		return nil, fmt.Errorf("bighouse: need service and interarrival distributions")
	}
	eng := des.New()
	split := rng.NewSplitter(cfg.Seed)
	arrRNG := split.Stream("arrivals")
	svcRNG := split.Stream("service")
	fac := job.NewFactory()
	q := queueing.NewFIFO()
	busy := 0
	horizon := warmup + duration

	res := &Result{Latency: stats.NewLatencyHist()}

	var tryDispatch func(now des.Time)
	complete := func(j *job.Job) func(des.Time) {
		return func(now des.Time) {
			busy--
			if j.Arrived >= warmup {
				res.Completions++
				res.Latency.Record(now - j.Arrived)
			}
			tryDispatch(now)
		}
	}
	tryDispatch = func(now des.Time) {
		for busy < cfg.Servers && q.Len() > 0 {
			j := q.Pop()
			busy++
			d := des.FromNanos(cfg.Service.Sample(svcRNG))
			eng.At(now+d, complete(j))
		}
	}

	var scheduleArrival func(from des.Time)
	scheduleArrival = func(from des.Time) {
		gap := des.FromNanos(cfg.Interarrival.Sample(arrRNG))
		if gap < 1 {
			gap = 1
		}
		eng.At(from+gap, func(now des.Time) {
			j := fac.NewJob(fac.NewRequest(now))
			j.Arrived = now
			if now >= warmup {
				res.Arrivals++
			}
			q.Push(j)
			tryDispatch(now)
			scheduleArrival(now)
		})
	}
	scheduleArrival(0)
	eng.RunUntil(horizon)

	res.Backlog = q.Len()
	if w := duration.Seconds(); w > 0 {
		res.GoodputQPS = float64(res.Completions) / w
	}
	return res, nil
}

// SingleStageService builds the BigHouse-style collapsed service-time model
// of a staged µqSim application: the sum of every stage's base and per-job
// cost, charged in full to every request (no batch amortization).
func SingleStageService(parts ...dist.Sampler) dist.Sampler {
	flat := make([]dist.Sampler, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			flat = append(flat, p)
		}
	}
	return sum{parts: flat}
}

type sum struct{ parts []dist.Sampler }

func (s sum) Sample(r *rng.Source) float64 {
	total := 0.0
	for _, p := range s.parts {
		total += p.Sample(r)
	}
	return total
}

func (s sum) Mean() float64 {
	total := 0.0
	for _, p := range s.parts {
		total += p.Mean()
	}
	return total
}
