package queueing

import (
	"testing"

	"uqsim/internal/job"
)

func benchQueue(b *testing.B, q Queue, conns int) {
	b.Helper()
	f := job.NewFactory()
	jobs := make([]*job.Job, 1024)
	for i := range jobs {
		jobs[i] = f.NewJob(nil)
		jobs[i].Conn = i % conns
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			q.Push(j)
		}
		for q.Len() > 0 {
			q.PopBatch(16)
		}
	}
}

func BenchmarkFIFOPushPop(b *testing.B)    { benchQueue(b, NewFIFO(), 1) }
func BenchmarkEpollPushPop(b *testing.B)   { benchQueue(b, NewEpoll(4), 32) }
func BenchmarkSocketPushPop(b *testing.B)  { benchQueue(b, NewSocket(4), 32) }
func BenchmarkEpollManyConns(b *testing.B) { benchQueue(b, NewEpoll(4), 512) }
