package queueing

import (
	"uqsim/internal/job"
)

// connQueue is one per-connection subqueue, kept in arrival order.
type connQueue struct {
	conn  int
	items []*job.Job
}

// Epoll models the epoll stage queue: jobs are classified into subqueues by
// connection, and one PopBatch drains the first PerConn jobs of every
// active subqueue — the simulator analogue of epoll_wait returning all
// ready events at once. The batch cost amortization this enables is the key
// modelling difference from single-queue simulators (paper §IV-E).
type Epoll struct {
	// PerConn bounds jobs taken per connection per batch (the paper's
	// "queue parameter" N); <= 0 means all queued jobs per connection.
	PerConn int

	subs  map[int]*connQueue
	order []int // active connections in first-activation order
	total int
}

// NewEpoll returns an epoll queue taking up to perConn jobs per connection
// per batch (<= 0: unbounded).
func NewEpoll(perConn int) *Epoll {
	return &Epoll{PerConn: perConn, subs: make(map[int]*connQueue)}
}

func (q *Epoll) Push(j *job.Job) {
	sub, ok := q.subs[j.Conn]
	if !ok {
		sub = &connQueue{conn: j.Conn}
		q.subs[j.Conn] = sub
		q.order = append(q.order, j.Conn)
	}
	sub.items = append(sub.items, j)
	q.total++
}

// PopBatch returns the first PerConn jobs of each active subqueue, in
// connection-activation order, overall bounded by max (<=0: unbounded).
func (q *Epoll) PopBatch(max int) []*job.Job {
	if q.total == 0 {
		return nil
	}
	var batch []*job.Job
	newOrder := make([]int, 0, len(q.order))
	for i, conn := range q.order {
		if max > 0 && len(batch) >= max {
			newOrder = append(newOrder, q.order[i:]...)
			break
		}
		sub := q.subs[conn]
		take := len(sub.items)
		if q.PerConn > 0 && take > q.PerConn {
			take = q.PerConn
		}
		if max > 0 && len(batch)+take > max {
			take = max - len(batch)
		}
		if take > 0 {
			batch = append(batch, sub.items[:take]...)
			sub.items = sub.items[take:]
			q.total -= take
		}
		if len(sub.items) == 0 {
			delete(q.subs, conn)
		} else {
			newOrder = append(newOrder, conn)
		}
	}
	q.order = newOrder
	return batch
}

func (q *Epoll) Len() int { return q.total }

func (q *Epoll) Peek() *job.Job {
	for _, conn := range q.order {
		if sub, ok := q.subs[conn]; ok && len(sub.items) > 0 {
			return sub.items[0]
		}
	}
	return nil
}

// ActiveConnections reports how many connections currently have queued jobs.
func (q *Epoll) ActiveConnections() int { return len(q.subs) }

// Socket models the socket_read stage queue: per-connection subqueues, but a
// batch drains up to PerConn jobs from a single ready connection,
// round-robining across connections on successive pops.
type Socket struct {
	// PerConn bounds jobs per batch (<= 0: whole connection).
	PerConn int

	subs  map[int]*connQueue
	order []int
	next  int // round-robin cursor into order
	total int
}

// NewSocket returns a socket queue draining up to perConn jobs from one
// connection per batch (<= 0: entire connection backlog).
func NewSocket(perConn int) *Socket {
	return &Socket{PerConn: perConn, subs: make(map[int]*connQueue)}
}

func (q *Socket) Push(j *job.Job) {
	sub, ok := q.subs[j.Conn]
	if !ok {
		sub = &connQueue{conn: j.Conn}
		q.subs[j.Conn] = sub
		q.order = append(q.order, j.Conn)
	}
	sub.items = append(sub.items, j)
	q.total++
}

func (q *Socket) PopBatch(max int) []*job.Job {
	if q.total == 0 {
		return nil
	}
	if q.next >= len(q.order) {
		q.next = 0
	}
	conn := q.order[q.next]
	sub := q.subs[conn]
	take := len(sub.items)
	if q.PerConn > 0 && take > q.PerConn {
		take = q.PerConn
	}
	if max > 0 && take > max {
		take = max
	}
	batch := make([]*job.Job, take)
	copy(batch, sub.items[:take])
	sub.items = sub.items[take:]
	q.total -= take
	if len(sub.items) == 0 {
		delete(q.subs, conn)
		q.order = append(q.order[:q.next], q.order[q.next+1:]...)
		// cursor now points at the following connection already
	} else {
		q.next++
	}
	return batch
}

func (q *Socket) Len() int { return q.total }

func (q *Socket) Peek() *job.Job {
	if q.total == 0 {
		return nil
	}
	idx := q.next
	if idx >= len(q.order) {
		idx = 0
	}
	return q.subs[q.order[idx]].items[0]
}

// ActiveConnections reports how many connections currently have queued jobs.
func (q *Socket) ActiveConnections() int { return len(q.subs) }

// Kind names a queue discipline in configs.
type Kind string

// Queue disciplines, matching the paper's service.json "queue_type" values.
const (
	KindSingle Kind = "single"
	KindEpoll  Kind = "epoll"
	KindSocket Kind = "socket"
)

// New constructs a queue of the given kind. perConn is the per-connection
// batch parameter for epoll/socket (ignored for single).
func New(kind Kind, perConn int) Queue {
	switch kind {
	case KindEpoll:
		return NewEpoll(perConn)
	case KindSocket:
		return NewSocket(perConn)
	default:
		return NewFIFO()
	}
}
