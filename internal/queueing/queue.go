// Package queueing implements the stage job queues of µqSim's
// intra-microservice model. Each execution stage is a queue–consumer pair;
// the queue's discipline decides how jobs are grouped into batches when a
// worker becomes available:
//
//   - FIFO ("single"): plain first-in-first-out, one or many jobs at a time.
//   - Epoll: jobs are classified into per-connection subqueues; a batch
//     returns the first N jobs of each active subqueue, modelling an
//     epoll_wait that reports all ready connections at once.
//   - Socket ("socket_read"): per-connection subqueues; a batch returns up
//     to N jobs from a single ready connection, round-robining across
//     connections on successive pops.
package queueing

import (
	"uqsim/internal/job"
)

// Queue is a stage's job queue.
type Queue interface {
	// Push enqueues a job.
	Push(j *job.Job)
	// PopBatch removes and returns the next batch according to the
	// queue's discipline. max bounds the batch size; max <= 0 means the
	// discipline's natural/unbounded batch. Returns nil when empty.
	PopBatch(max int) []*job.Job
	// Len reports the number of queued jobs.
	Len() int
	// Peek returns the job that would lead the next batch without
	// removing it, or nil when empty.
	Peek() *job.Job
}

// FIFO is the "single" queue type: one global FIFO.
type FIFO struct {
	items []*job.Job
	head  int
}

// NewFIFO returns an empty FIFO queue.
func NewFIFO() *FIFO { return &FIFO{} }

func (q *FIFO) Push(j *job.Job) {
	q.items = append(q.items, j)
}

func (q *FIFO) PopBatch(max int) []*job.Job {
	n := q.Len()
	if n == 0 {
		return nil
	}
	if max <= 0 || max > n {
		max = n
	}
	batch := make([]*job.Job, max)
	copy(batch, q.items[q.head:q.head+max])
	q.head += max
	q.compact()
	return batch
}

// Pop removes and returns the single oldest job, or nil when empty.
func (q *FIFO) Pop() *job.Job {
	b := q.PopBatch(1)
	if len(b) == 0 {
		return nil
	}
	return b[0]
}

// PopTail removes and returns the single newest job, or nil when empty.
// Adaptive-LIFO admission uses it to serve fresh requests first under
// overload while the queue otherwise stays FIFO.
func (q *FIFO) PopTail() *job.Job {
	if q.Len() == 0 {
		return nil
	}
	j := q.items[len(q.items)-1]
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	q.compact()
	return j
}

func (q *FIFO) Len() int { return len(q.items) - q.head }

func (q *FIFO) Peek() *job.Job {
	if q.Len() == 0 {
		return nil
	}
	return q.items[q.head]
}

func (q *FIFO) compact() {
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	if q.Len() == 0 {
		q.items = q.items[:0]
		q.head = 0
	}
}
