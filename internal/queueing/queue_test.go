package queueing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uqsim/internal/job"
)

func mkJob(f *job.Factory, conn int) *job.Job {
	j := f.NewJob(nil)
	j.Conn = conn
	return j
}

func ids(js []*job.Job) []job.ID {
	out := make([]job.ID, len(js))
	for i, j := range js {
		out[i] = j.ID
	}
	return out
}

func TestFIFOOrder(t *testing.T) {
	f := job.NewFactory()
	q := NewFIFO()
	var want []job.ID
	for i := 0; i < 10; i++ {
		j := mkJob(f, 0)
		want = append(want, j.ID)
		q.Push(j)
	}
	if q.Len() != 10 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Peek().ID != want[0] {
		t.Fatal("peek should show oldest")
	}
	got := ids(q.PopBatch(0))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch: %v vs %v", got, want)
		}
	}
	if q.Len() != 0 || q.Peek() != nil || q.PopBatch(1) != nil {
		t.Fatal("queue should be empty")
	}
}

func TestFIFOBatchBound(t *testing.T) {
	f := job.NewFactory()
	q := NewFIFO()
	for i := 0; i < 5; i++ {
		q.Push(mkJob(f, 0))
	}
	if got := len(q.PopBatch(2)); got != 2 {
		t.Fatalf("batch = %d, want 2", got)
	}
	if q.Len() != 3 {
		t.Fatalf("remaining = %d", q.Len())
	}
	if got := len(q.PopBatch(10)); got != 3 {
		t.Fatalf("batch = %d, want 3", got)
	}
}

func TestFIFOPop(t *testing.T) {
	f := job.NewFactory()
	q := NewFIFO()
	if q.Pop() != nil {
		t.Fatal("pop on empty should be nil")
	}
	a := mkJob(f, 0)
	q.Push(a)
	if q.Pop() != a {
		t.Fatal("pop should return pushed job")
	}
}

func TestFIFOPopTail(t *testing.T) {
	f := job.NewFactory()
	q := NewFIFO()
	if q.PopTail() != nil {
		t.Fatal("pop-tail on empty should be nil")
	}
	a, b, c := mkJob(f, 0), mkJob(f, 0), mkJob(f, 0)
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if q.PopTail() != c {
		t.Fatal("pop-tail should return newest")
	}
	if q.Peek() != a {
		t.Fatal("peek should still show oldest")
	}
	// Mixing head and tail pops must preserve the remaining order.
	if q.Pop() != a || q.PopTail() != b {
		t.Fatal("mixed pops out of order")
	}
	if q.Len() != 0 || q.PopTail() != nil {
		t.Fatal("queue should be empty")
	}
	// PopTail after head pops (head > 0) must not resurrect popped jobs.
	for i := 0; i < 4; i++ {
		q.Push(mkJob(f, 0))
	}
	q.Pop()
	q.Pop()
	last := mkJob(f, 0)
	q.Push(last)
	if q.PopTail() != last || q.Len() != 2 {
		t.Fatal("pop-tail interacted badly with the head index")
	}
}

func TestFIFOCompaction(t *testing.T) {
	f := job.NewFactory()
	q := NewFIFO()
	// Push/pop many times to exercise the head-compaction path.
	for round := 0; round < 100; round++ {
		for i := 0; i < 10; i++ {
			q.Push(mkJob(f, 0))
		}
		for i := 0; i < 10; i++ {
			if q.Pop() == nil {
				t.Fatal("unexpected empty")
			}
		}
	}
	if q.Len() != 0 {
		t.Fatal("should be empty")
	}
}

func TestEpollTakesFromEachActiveConnection(t *testing.T) {
	f := job.NewFactory()
	q := NewEpoll(2)
	// conn 1: 3 jobs; conn 2: 1 job; conn 3: 2 jobs
	c1 := []*job.Job{mkJob(f, 1), mkJob(f, 1), mkJob(f, 1)}
	c2 := []*job.Job{mkJob(f, 2)}
	c3 := []*job.Job{mkJob(f, 3), mkJob(f, 3)}
	for _, j := range append(append(append([]*job.Job{}, c1...), c2...), c3...) {
		q.Push(j)
	}
	if q.ActiveConnections() != 3 {
		t.Fatalf("active = %d", q.ActiveConnections())
	}
	batch := q.PopBatch(0)
	// Expect first 2 of conn1, 1 of conn2, 2 of conn3 = 5 jobs.
	if len(batch) != 5 {
		t.Fatalf("batch = %d, want 5 (%v)", len(batch), ids(batch))
	}
	want := []job.ID{c1[0].ID, c1[1].ID, c2[0].ID, c3[0].ID, c3[1].ID}
	for i := range want {
		if batch[i].ID != want[i] {
			t.Fatalf("batch order %v, want %v", ids(batch), want)
		}
	}
	// conn1 still has 1 job.
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1", q.Len())
	}
	rest := q.PopBatch(0)
	if len(rest) != 1 || rest[0].ID != c1[2].ID {
		t.Fatalf("rest = %v", ids(rest))
	}
}

func TestEpollMaxBound(t *testing.T) {
	f := job.NewFactory()
	q := NewEpoll(0) // unbounded per conn
	for c := 1; c <= 3; c++ {
		for i := 0; i < 4; i++ {
			q.Push(mkJob(f, c))
		}
	}
	batch := q.PopBatch(5)
	if len(batch) != 5 {
		t.Fatalf("batch = %d, want 5", len(batch))
	}
	if q.Len() != 7 {
		t.Fatalf("remaining = %d, want 7", q.Len())
	}
	// Remaining jobs must still pop in consistent order with no loss.
	total := len(batch)
	for q.Len() > 0 {
		b := q.PopBatch(5)
		if len(b) == 0 {
			t.Fatal("stuck queue")
		}
		total += len(b)
	}
	if total != 12 {
		t.Fatalf("total popped = %d, want 12", total)
	}
}

func TestEpollPerConnFIFOWithinConnection(t *testing.T) {
	f := job.NewFactory()
	q := NewEpoll(1)
	a, b := mkJob(f, 7), mkJob(f, 7)
	q.Push(a)
	q.Push(b)
	first := q.PopBatch(0)
	if len(first) != 1 || first[0] != a {
		t.Fatal("per-conn limit should take oldest first")
	}
	second := q.PopBatch(0)
	if len(second) != 1 || second[0] != b {
		t.Fatal("second pop should return remaining job")
	}
}

func TestEpollPeek(t *testing.T) {
	f := job.NewFactory()
	q := NewEpoll(1)
	if q.Peek() != nil {
		t.Fatal("empty peek")
	}
	a := mkJob(f, 1)
	q.Push(a)
	if q.Peek() != a || q.Len() != 1 {
		t.Fatal("peek should not consume")
	}
}

func TestSocketSingleConnectionPerBatch(t *testing.T) {
	f := job.NewFactory()
	q := NewSocket(2)
	c1 := []*job.Job{mkJob(f, 1), mkJob(f, 1), mkJob(f, 1)}
	c2 := []*job.Job{mkJob(f, 2), mkJob(f, 2)}
	for _, j := range append(append([]*job.Job{}, c1...), c2...) {
		q.Push(j)
	}
	// First batch: 2 jobs from conn1.
	b1 := q.PopBatch(0)
	if len(b1) != 2 || b1[0] != c1[0] || b1[1] != c1[1] {
		t.Fatalf("b1 = %v", ids(b1))
	}
	// Round robin: next batch from conn2.
	b2 := q.PopBatch(0)
	if len(b2) != 2 || b2[0] != c2[0] {
		t.Fatalf("b2 = %v", ids(b2))
	}
	// Back to conn1's remaining job.
	b3 := q.PopBatch(0)
	if len(b3) != 1 || b3[0] != c1[2] {
		t.Fatalf("b3 = %v", ids(b3))
	}
	if q.Len() != 0 {
		t.Fatal("should be empty")
	}
}

func TestSocketMaxBound(t *testing.T) {
	f := job.NewFactory()
	q := NewSocket(0)
	for i := 0; i < 5; i++ {
		q.Push(mkJob(f, 1))
	}
	if got := len(q.PopBatch(3)); got != 3 {
		t.Fatalf("batch = %d", got)
	}
	if got := len(q.PopBatch(0)); got != 2 {
		t.Fatalf("batch = %d", got)
	}
}

func TestSocketPeekAndActive(t *testing.T) {
	f := job.NewFactory()
	q := NewSocket(1)
	if q.Peek() != nil {
		t.Fatal("empty peek")
	}
	q.Push(mkJob(f, 1))
	q.Push(mkJob(f, 2))
	if q.ActiveConnections() != 2 {
		t.Fatalf("active = %d", q.ActiveConnections())
	}
	p := q.Peek()
	b := q.PopBatch(0)
	if len(b) != 1 || b[0] != p {
		t.Fatal("peek should match next pop")
	}
}

func TestNewByKind(t *testing.T) {
	if _, ok := New(KindSingle, 0).(*FIFO); !ok {
		t.Fatal("single should be FIFO")
	}
	if _, ok := New(KindEpoll, 2).(*Epoll); !ok {
		t.Fatal("epoll kind")
	}
	if _, ok := New(KindSocket, 2).(*Socket); !ok {
		t.Fatal("socket kind")
	}
	if _, ok := New(Kind("unknown"), 0).(*FIFO); !ok {
		t.Fatal("unknown kind should default to FIFO")
	}
}

// Property: for every discipline, no job is lost or duplicated, and jobs
// from the same connection always emerge in FIFO order.
func TestQueueConservationProperty(t *testing.T) {
	prop := func(seed int64, kindSel uint8, perConn uint8, nJobs uint8) bool {
		r := rand.New(rand.NewSource(seed))
		kinds := []Kind{KindSingle, KindEpoll, KindSocket}
		q := New(kinds[int(kindSel)%3], int(perConn%4))
		f := job.NewFactory()
		n := int(nJobs%100) + 1
		pushed := make(map[job.ID]int) // id → conn
		connSeq := make(map[int][]job.ID)
		for i := 0; i < n; i++ {
			c := r.Intn(5)
			j := mkJob(f, c)
			pushed[j.ID] = c
			connSeq[c] = append(connSeq[c], j.ID)
			q.Push(j)
		}
		seen := make(map[job.ID]bool)
		perConnSeen := make(map[int]int)
		for q.Len() > 0 {
			batch := q.PopBatch(r.Intn(7)) // 0 (unbounded) .. 6
			if len(batch) == 0 {
				return false // stuck
			}
			for _, j := range batch {
				if seen[j.ID] {
					return false // duplicate
				}
				seen[j.ID] = true
				c := pushed[j.ID]
				// FIFO within connection.
				if connSeq[c][perConnSeen[c]] != j.ID {
					return false
				}
				perConnSeen[c]++
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
