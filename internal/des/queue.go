package des

import "container/heap"

// EventQueue is a deterministic priority queue of events ordered by
// (time, sequence). The sequence number is assigned per queue at
// scheduling time, so ties at the same timestamp fire in scheduling
// order regardless of heap internals. The queue keeps a freelist of
// fired fire-and-forget events so steady-state scheduling does not
// allocate; events scheduled with a handle (Schedule with pooled=false)
// are never recycled, because the caller may retain the pointer.
//
// EventQueue is not safe for concurrent use. The parallel engine gives
// each logical process its own queue and synchronises at window
// barriers instead of locking.
type EventQueue struct {
	h    eventHeap
	seq  uint64
	free []*Event
}

// Len reports the number of entries in the queue, including cancelled
// events that have not yet been compacted out.
func (q *EventQueue) Len() int { return len(q.h) }

// Seq reports the next sequence number the queue will assign. Exposed
// so engines can stamp externally merged events deterministically.
func (q *EventQueue) Seq() uint64 { return q.seq }

// Schedule enqueues fn at absolute time t and returns its handle. When
// pooled is true the event is recycled onto the freelist after it pops,
// so the handle must not be retained or cancelled by the caller.
func (q *EventQueue) Schedule(t Time, fn Callback, pooled bool) *Event {
	var ev *Event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		*ev = Event{at: t, seq: q.seq, fn: fn, pooled: pooled}
	} else {
		ev = &Event{at: t, seq: q.seq, fn: fn, pooled: pooled}
	}
	q.seq++
	heap.Push(&q.h, ev)
	return ev
}

// Peek reports the timestamp of the earliest live event, discarding any
// cancelled entries it finds at the top.
func (q *EventQueue) Peek() (Time, bool) {
	for len(q.h) > 0 {
		if q.h[0].canceled {
			ev := heap.Pop(&q.h).(*Event)
			q.maybeRecycle(ev)
			continue
		}
		return q.h[0].at, true
	}
	return 0, false
}

// Pop removes and returns the earliest live event, or nil when the
// queue is empty. The caller is responsible for recycling pooled
// events after invoking their callbacks (see Recycle).
func (q *EventQueue) Pop() *Event {
	for len(q.h) > 0 {
		ev := heap.Pop(&q.h).(*Event)
		if ev.canceled {
			q.maybeRecycle(ev)
			continue
		}
		return ev
	}
	return nil
}

// PopBefore removes and returns the earliest live event strictly before
// end, or nil when none qualifies. Used by the parallel engine to drain
// a lookahead window without disturbing events beyond it.
func (q *EventQueue) PopBefore(end Time) *Event {
	for {
		at, ok := q.Peek()
		if !ok || at >= end {
			return nil
		}
		ev := heap.Pop(&q.h).(*Event)
		if ev.canceled {
			q.maybeRecycle(ev)
			continue
		}
		return ev
	}
}

// Remove cancels ev and, when it is still queued, removes its heap
// entry in O(log n). It reports whether an entry was removed.
func (q *EventQueue) Remove(ev *Event) bool {
	if ev == nil || ev.canceled {
		return false
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&q.h, ev.index)
		q.maybeRecycle(ev)
		return true
	}
	return false
}

// Recycle returns a popped pooled event to the freelist. Calling it
// with a non-pooled event is a no-op, so engines can call it
// unconditionally after firing.
func (q *EventQueue) Recycle(ev *Event) { q.maybeRecycle(ev) }

func (q *EventQueue) maybeRecycle(ev *Event) {
	if !ev.pooled {
		return
	}
	ev.fn = nil
	q.free = append(q.free, ev)
}
