package des

// Scheduler is the scheduling surface a simulation model needs: read
// the clock, schedule callbacks, cancel them. Both the sequential
// Engine and each logical process of the parallel engine implement it,
// so services, workloads, monitors and controllers are agnostic to
// which engine executes them.
type Scheduler interface {
	// Now reports the current virtual time.
	Now() Time
	// At schedules fn at absolute time t and returns a cancellable
	// handle. Scheduling in the past panics.
	At(t Time, fn Callback) *Event
	// After schedules fn d after the current time; negative delays
	// clamp to zero.
	After(d Time, fn Callback) *Event
	// Post schedules fn at absolute time t fire-and-forget: no handle
	// is returned and the event's storage is recycled after it fires.
	// Use it on hot paths that never cancel.
	Post(t Time, fn Callback)
	// Cancel prevents ev from firing; no-op on nil, fired or already
	// cancelled events.
	Cancel(ev *Event)
}

// Runner extends Scheduler with run-loop control. Top-level harnesses
// (Sim, experiments, benchmarks) drive a Runner; model components only
// ever need the Scheduler half.
type Runner interface {
	Scheduler
	// Run fires events until the queue drains or Stop is called.
	Run()
	// RunUntil fires events with timestamps ≤ deadline, then advances
	// the clock to the deadline.
	RunUntil(deadline Time)
	// Stop halts Run/RunUntil after the current event completes.
	Stop()
	// Resume clears a Stop so the engine can run again.
	Resume()
	// Stopped reports whether the engine is currently stopped.
	Stopped() bool
	// Pending reports the number of live events currently scheduled.
	Pending() int
	// Processed reports how many events have fired since construction.
	Processed() uint64
	// NextEventTime reports the firing time of the earliest pending
	// event across the whole engine.
	NextEventTime() (Time, bool)
}
