package des

import "testing"

func TestEventQueueOrderAndRecycle(t *testing.T) {
	var q EventQueue
	var got []int
	rec := func(i int) Callback { return func(Time) { got = append(got, i) } }

	q.Schedule(30, rec(2), true)
	q.Schedule(10, rec(0), true)
	q.Schedule(10, rec(1), true) // same time: scheduling order breaks the tie
	q.Schedule(40, rec(3), false)

	var prev Time
	for {
		ev := q.Pop()
		if ev == nil {
			break
		}
		if ev.At() < prev {
			t.Fatalf("events out of order: %v after %v", ev.At(), prev)
		}
		prev = ev.At()
		ev.fn(ev.At())
		q.Recycle(ev)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("fire order %v, want 0..3", got)
		}
	}
	if len(q.free) != 3 {
		t.Fatalf("freelist has %d events, want 3 (non-pooled event must not be recycled)", len(q.free))
	}

	// Re-scheduling must reuse freelist storage.
	before := len(q.free)
	q.Schedule(50, rec(4), true)
	if len(q.free) != before-1 {
		t.Fatalf("Schedule did not draw from freelist: %d -> %d", before, len(q.free))
	}
}

func TestEventQueuePopBefore(t *testing.T) {
	var q EventQueue
	fn := func(Time) {}
	q.Schedule(10, fn, true)
	q.Schedule(20, fn, true)
	q.Schedule(30, fn, true)

	if ev := q.PopBefore(10); ev != nil {
		t.Fatalf("PopBefore(10) returned event at %v, want nil (end is exclusive)", ev.At())
	}
	ev := q.PopBefore(25)
	if ev == nil || ev.At() != 10 {
		t.Fatalf("PopBefore(25) = %v, want event at 10", ev)
	}
	q.Recycle(ev)
	ev = q.PopBefore(25)
	if ev == nil || ev.At() != 20 {
		t.Fatalf("PopBefore(25) = %v, want event at 20", ev)
	}
	q.Recycle(ev)
	if ev := q.PopBefore(25); ev != nil {
		t.Fatalf("PopBefore(25) = event at %v, want nil", ev.At())
	}
	if n := q.Len(); n != 1 {
		t.Fatalf("queue has %d events, want 1", n)
	}
}

func TestEventQueueRemove(t *testing.T) {
	var q EventQueue
	fired := false
	ev := q.Schedule(10, func(Time) { fired = true }, false)
	q.Schedule(20, func(Time) {}, true)

	if !q.Remove(ev) {
		t.Fatal("Remove reported false for a queued event")
	}
	if q.Remove(ev) {
		t.Fatal("second Remove reported true")
	}
	if at, ok := q.Peek(); !ok || at != 20 {
		t.Fatalf("Peek = %v,%v, want 20,true", at, ok)
	}
	for ev := q.Pop(); ev != nil; ev = q.Pop() {
		ev.fn(ev.At())
		q.Recycle(ev)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEnginePostDoesNotAllocateInSteadyState(t *testing.T) {
	e := New()
	var hop Callback
	n := 0
	hop = func(now Time) {
		n++
		if n < 1000 {
			e.Post(now+Microsecond, hop)
		}
	}
	e.Post(0, hop)
	// Warm the freelist with the first events, then measure.
	allocs := testing.AllocsPerRun(100, func() {
		e.Post(e.Now()+2*Microsecond, func(Time) {})
		e.Step()
		e.Step()
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state Post allocates %.1f objects/op, want 0", allocs)
	}
}
