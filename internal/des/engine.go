package des

import (
	"fmt"
	"sync/atomic"
)

// Callback is the body of a scheduled event. It receives the virtual time at
// which the event fires (always equal to Engine.Now at that instant).
type Callback func(now Time)

// Event is a handle to a scheduled callback. It can be cancelled until it
// fires; cancellation removes the heap entry in O(log n), so heavily
// cancelled workloads (e.g. RPC timeout guards that almost never fire)
// don't bloat the queue.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index; -1 once popped
	canceled bool
	pooled   bool // fire-and-forget: recycled after firing, no live handle
	fn       Callback
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Fn reports the event's callback. It exists for engines executing
// popped events; model code has no business calling it.
func (e *Event) Fn() Callback { return e.fn }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation loop. Zero value is
// not usable; construct with New. Engines are not safe for concurrent use:
// all scheduling must happen from event callbacks or before Run.
type Engine struct {
	now Time
	q   EventQueue
	// stopped is atomic so an external watchdog (signal handler, wall-clock
	// guard) may call Stop while Run spins on another goroutine. Everything
	// else on the engine remains single-threaded.
	stopped   atomic.Bool
	processed uint64
	canceled  uint64
}

var _ Runner = (*Engine)(nil)

// New returns an engine with the clock at zero and an empty event queue.
func New() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of live events currently scheduled.
func (e *Engine) Pending() int { return e.q.Len() }

// Processed reports how many events have fired since construction.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a causality bug in a model, never a recoverable
// condition.
func (e *Engine) At(t Time, fn Callback) *Event {
	e.check(t, fn)
	return e.q.Schedule(t, fn, false)
}

// After schedules fn to run d after the current virtual time. Negative
// delays clamp to zero.
func (e *Engine) After(d Time, fn Callback) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Post schedules fn at absolute time t fire-and-forget. No handle is
// returned and the event's storage is recycled after it fires, so hot
// paths that never cancel (service stage completions, generator arrivals)
// do not allocate in steady state.
func (e *Engine) Post(t Time, fn Callback) {
	e.check(t, fn)
	e.q.Schedule(t, fn, true)
}

func (e *Engine) check(t Time, fn Callback) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("des: nil event callback")
	}
}

// Cancel prevents ev from firing and removes its heap entry. Cancelling an
// already-fired or already-cancelled event is a harmless no-op.
func (e *Engine) Cancel(ev *Event) {
	if e.q.Remove(ev) {
		e.canceled++
	}
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped.Load() {
		return false
	}
	ev := e.q.Pop()
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.processed++
	fn := ev.fn
	e.q.Recycle(ev)
	fn(e.now)
	return true
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps ≤ deadline, then advances the clock
// to the deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline Time) {
	for !e.stopped.Load() {
		next, ok := e.q.Peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && !e.stopped.Load() {
		e.now = deadline
	}
}

// NextEventTime reports the firing time of the earliest live pending event.
func (e *Engine) NextEventTime() (Time, bool) { return e.q.Peek() }

// Stop halts Run/RunUntil after the current event completes. Further Step
// calls report false until Resume.
func (e *Engine) Stop() { e.stopped.Store(true) }

// Resume clears a Stop so the engine can run again.
func (e *Engine) Resume() { e.stopped.Store(false) }

// Stopped reports whether the engine is currently stopped.
func (e *Engine) Stopped() bool { return e.stopped.Load() }
