package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d", Microsecond)
	}
	if Millisecond != 1_000_000 {
		t.Fatalf("Millisecond = %d", Millisecond)
	}
	if Second != 1_000_000_000 {
		t.Fatalf("Second = %d", Second)
	}
}

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in  Time
		sec float64
		ms  float64
		us  float64
	}{
		{0, 0, 0, 0},
		{Second, 1, 1000, 1e6},
		{1500 * Microsecond, 0.0015, 1.5, 1500},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); got != c.sec {
			t.Errorf("%v.Seconds() = %v, want %v", c.in, got, c.sec)
		}
		if got := c.in.Millis(); got != c.ms {
			t.Errorf("%v.Millis() = %v, want %v", c.in, got, c.ms)
		}
		if got := c.in.Micros(); got != c.us {
			t.Errorf("%v.Micros() = %v, want %v", c.in, got, c.us)
		}
	}
}

func TestFromNanosClamps(t *testing.T) {
	if FromNanos(-5) != 0 {
		t.Error("negative nanos should clamp to zero")
	}
	if FromNanos(1e30) != MaxTime {
		t.Error("huge nanos should clamp to MaxTime")
	}
	if FromNanos(1234.4) != 1234 {
		t.Errorf("FromNanos(1234.4) = %d", FromNanos(1234.4))
	}
	if FromNanos(1234.6) != 1235 {
		t.Errorf("FromNanos(1234.6) = %d", FromNanos(1234.6))
	}
}

func TestFromDurationAndSeconds(t *testing.T) {
	if FromDuration(3*time.Millisecond) != 3*Millisecond {
		t.Error("FromDuration mismatch")
	}
	if FromSeconds(0.25) != 250*Millisecond {
		t.Error("FromSeconds mismatch")
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5 * Nanosecond:     "5ns",
		1500 * Nanosecond:  "1.500us",
		1500 * Microsecond: "1.500ms",
		2500 * Millisecond: "2.500s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		e.At(d, func(now Time) { got = append(got, now) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if e.Now() != 50 {
		t.Fatalf("clock at %v, want 50", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending", order)
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := New()
	var trace []Time
	e.At(10, func(now Time) {
		trace = append(trace, now)
		e.After(5, func(now Time) { trace = append(trace, now) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace = %v, want [10 15]", trace)
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(10, func(Time) { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked cancelled")
	}
	// Double-cancel and nil-cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

// TestEngineCancelAfterFired: cancelling an event that already ran is a
// no-op — it must not touch the heap (the event's slot may have been
// reused) or re-mark it as pending work.
func TestEngineCancelAfterFired(t *testing.T) {
	e := New()
	fired := 0
	ev := e.At(10, func(Time) { fired++ })
	later := e.At(20, func(Time) { fired++ })
	e.Step() // fires ev
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Fatal("post-fire cancel should still mark the event")
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d; post-fire cancel must not disturb other events", fired)
	}
	_ = later
}

// TestEngineCancelLastElement: removing the final heap slot (index ==
// len-1) exercises heap.Remove's no-swap path.
func TestEngineCancelLastElement(t *testing.T) {
	e := New()
	var fired []Time
	e.At(10, func(now Time) { fired = append(fired, now) })
	last := e.At(30, func(now Time) { fired = append(fired, now) })
	e.Cancel(last)
	e.At(20, func(now Time) { fired = append(fired, now) })
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("fired = %v, want [10 20]", fired)
	}
}

// TestEngineCancelSoleEvent: cancelling the only pending event leaves an
// empty, runnable engine.
func TestEngineCancelSoleEvent(t *testing.T) {
	e := New()
	ev := e.At(5, func(Time) { t.Fatal("cancelled event fired") })
	e.Cancel(ev)
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("cancelled sole event still pending")
	}
	e.Run()
	e.At(7, func(Time) {})
	e.Run()
	if e.Now() != 7 {
		t.Fatalf("now = %v, want 7", e.Now())
	}
}

// TestEngineCancelSelfFromCallback: an event cancelling itself mid-fire
// (index already -1) must not corrupt the heap.
func TestEngineCancelSelfFromCallback(t *testing.T) {
	e := New()
	var ev *Event
	fired := 0
	ev = e.At(10, func(Time) {
		fired++
		e.Cancel(ev)
	})
	e.At(20, func(Time) { fired++ })
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// TestEngineCancelThenRescheduleSameTime: cancel+reschedule at the same
// timestamp keeps the deterministic insertion (seq) order for survivors.
func TestEngineCancelThenRescheduleSameTime(t *testing.T) {
	e := New()
	var order []int
	a := e.At(10, func(Time) { order = append(order, 0) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.Cancel(a)
	e.At(10, func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2] (insertion order at equal times)", order)
	}
}

func TestEngineCancelInterleaved(t *testing.T) {
	e := New()
	var fired []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(i), func(Time) { fired = append(fired, i) })
	}
	// Cancel the odd ones from within event 0.
	e.At(0, func(Time) {
		for i := 1; i < 10; i += 2 {
			e.Cancel(evs[i])
		}
	})
	e.Run()
	for _, v := range fired {
		if v%2 == 1 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(fired) != 5 {
		t.Fatalf("fired = %v, want 5 even events", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		e.At(d, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10,20", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock at %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v after second RunUntil", fired)
	}
}

func TestEngineStopResume(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i), func(Time) {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d after Stop, want 2", count)
	}
	if !e.Stopped() {
		t.Fatal("engine should report stopped")
	}
	e.Resume()
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d after Resume, want 5", count)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestEngineNilCallbackPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback should panic")
		}
	}()
	e.At(5, nil)
}

func TestEngineNegativeAfterClamps(t *testing.T) {
	e := New()
	fired := false
	e.At(10, func(Time) {
		e.After(-100, func(now Time) {
			fired = true
			if now != 10 {
				t.Errorf("clamped event fired at %v", now)
			}
		})
	})
	e.Run()
	if !fired {
		t.Fatal("clamped event never fired")
	}
}

func TestEngineNextEventTime(t *testing.T) {
	e := New()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine should have no next event")
	}
	ev := e.At(30, func(Time) {})
	e.At(40, func(Time) {})
	if next, ok := e.NextEventTime(); !ok || next != 30 {
		t.Fatalf("next = %v,%v want 30,true", next, ok)
	}
	e.Cancel(ev)
	if next, ok := e.NextEventTime(); !ok || next != 40 {
		t.Fatalf("next after cancel = %v,%v want 40,true", next, ok)
	}
}

func TestEngineProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("processed = %d, want 7", e.Processed())
	}
}

// Property: for any set of scheduled delays, the engine fires them in
// nondecreasing time order and the clock ends at the max delay.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := New()
		var fired []Time
		var max Time
		for _, d := range delays {
			dt := Time(d)
			if dt > max {
				max = dt
			}
			e.At(dt, func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset never fires those events and
// fires every other event exactly once.
func TestEngineCancelProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := New()
		total := int(n%64) + 1
		firedSet := make(map[int]int)
		evs := make([]*Event, total)
		for i := 0; i < total; i++ {
			i := i
			evs[i] = e.At(Time(r.Intn(50)), func(Time) { firedSet[i]++ })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < total; i++ {
			if r.Intn(2) == 0 {
				cancelled[i] = true
				e.Cancel(evs[i])
			}
		}
		e.Run()
		for i := 0; i < total; i++ {
			if cancelled[i] && firedSet[i] != 0 {
				return false
			}
			if !cancelled[i] && firedSet[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func(Time) {})
		}
		e.Run()
	}
}
