// Package des implements the discrete-event simulation engine at the core
// of µqSim. Simulated time is a virtual clock measured in integer
// nanoseconds; events are callbacks scheduled at absolute virtual times and
// executed in nondecreasing time order with deterministic FIFO tie-breaking,
// so a run with a fixed seed is exactly reproducible.
package des

import (
	"fmt"
	"math"
	"time"
)

// Time is a point on (or a distance along) the simulated clock, in
// nanoseconds. It is deliberately distinct from time.Duration so that wall
// -clock and virtual-clock quantities cannot be mixed by accident.
type Time int64

// Convenient units for expressing virtual durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// FromDuration converts a wall-clock duration literal (handy with the
// time.Millisecond constants) to virtual time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts a floating-point number of seconds to virtual time,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * 1e9)) }

// FromNanos converts a floating-point nanosecond quantity (the unit used by
// the dist package samplers) to Time. Negative inputs clamp to zero: a
// sampled service time can never move the clock backwards.
func FromNanos(ns float64) Time {
	if ns <= 0 {
		return 0
	}
	if ns >= math.MaxInt64 {
		return MaxTime
	}
	return Time(math.Round(ns))
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Nanos reports t as a floating-point number of nanoseconds.
func (t Time) Nanos() float64 { return float64(t) }

// Duration converts t to a wall-clock duration value (same nanosecond
// magnitude).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time with an auto-selected unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}
