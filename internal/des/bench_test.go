package des

import "testing"

// BenchmarkEngineAt is the "before" case for the event-freelist work:
// every scheduled event allocates a fresh handle because the caller may
// retain it for cancellation.
func BenchmarkEngineAt(b *testing.B) {
	e := New()
	hop := func(now Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Microsecond, hop)
		e.Step()
	}
}

// BenchmarkEnginePost is the "after" case: fire-and-forget events are
// recycled through the queue's freelist, so the steady-state loop runs
// allocation-free.
func BenchmarkEnginePost(b *testing.B) {
	e := New()
	hop := func(now Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Post(e.Now()+Microsecond, hop)
		e.Step()
	}
}

// BenchmarkEngineChain measures a self-rescheduling event chain, the
// shape of service stage pumps and open-loop arrival generators.
func BenchmarkEngineChain(b *testing.B) {
	e := New()
	n := 0
	var hop Callback
	hop = func(now Time) {
		n++
		if n < b.N {
			e.Post(now+Microsecond, hop)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Post(0, hop)
	e.Run()
}
