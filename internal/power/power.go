// Package power implements the paper's QoS-aware power-management
// algorithm (Algorithm 1, §V-B): a divide-and-conquer DVFS controller that
// splits the end-to-end tail-latency QoS into per-tier latency targets.
//
// The controller partitions the tail-latency space below the QoS target
// into buckets. Each observed, QoS-meeting interval contributes its
// per-tier p99 tuple to the bucket its end-to-end p99 falls into; failing
// tuples (targets in force during a violation) are remembered per bucket,
// and new tuples are only inserted when they are no more relaxed than any
// failing tuple. At runtime the controller samples a target bucket with
// learned preference weights, adopts one of its tuples as the per-tier QoS,
// slows down at most one tier per cycle (the one with the most latency
// slack), and on a violation penalizes the bucket, records the failing
// tuple, and speeds up every tier above its target.
package power

import (
	"fmt"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/job"
	"uqsim/internal/rng"
	"uqsim/internal/stats"
)

// Tier is one controllable application tier: a name (matching the service
// name used in per-tier latency accounting) and the core allocations whose
// frequency the controller drives.
type Tier struct {
	Name   string
	Allocs []*cluster.Allocation
}

// setFreqSteps moves every allocation of the tier by n DVFS steps (n may be
// negative) and returns the resulting frequency.
func (t *Tier) step(n int) float64 {
	f := 0.0
	for _, a := range t.Allocs {
		if n >= 0 {
			f = a.StepUp(n)
		} else {
			f = a.StepDown(-n)
		}
	}
	return f
}

// freq reports the tier's current frequency (allocations move together).
func (t *Tier) freq() float64 {
	if len(t.Allocs) == 0 {
		return 0
	}
	return t.Allocs[0].Freq()
}

// nominal reports the tier's nominal (maximum) frequency.
func (t *Tier) nominal() float64 {
	if len(t.Allocs) == 0 {
		return 0
	}
	return t.Allocs[0].Machine.Freq.MaxMHz
}

// canSlowDown reports whether the tier has DVFS room below its current
// frequency.
func (t *Tier) canSlowDown() bool {
	if len(t.Allocs) == 0 {
		return false
	}
	a := t.Allocs[0]
	return a.Freq() > a.Machine.Freq.MinMHz
}

// tuple is a per-tier p99 latency vector, indexed like Manager.tiers.
type tuple []des.Time

// noMoreRelaxedThan reports whether a is no more relaxed than b: a is "more
// relaxed" when every component is ≥ b's and at least one is strictly
// greater.
func (a tuple) noMoreRelaxedThan(b tuple) bool {
	allGE, anyGT := true, false
	for i := range a {
		if a[i] < b[i] {
			allGE = false
		}
		if a[i] > b[i] {
			anyGT = true
		}
	}
	return !(allGE && anyGT)
}

type bucket struct {
	lo, hi     des.Time
	tuples     []tuple
	failing    []tuple
	preference float64
}

func (b *bucket) insert(s tuple) {
	for _, f := range b.failing {
		if !s.noMoreRelaxedThan(f) {
			return
		}
	}
	b.tuples = append(b.tuples, s)
	const maxTuples = 64
	if len(b.tuples) > maxTuples {
		b.tuples = b.tuples[len(b.tuples)-maxTuples:]
	}
}

// Config parameterizes the controller.
type Config struct {
	// Target is the end-to-end tail-latency QoS (e.g. 5ms p99).
	Target des.Time
	// Quantile of the latency distributions compared against targets
	// (default 0.99).
	Quantile float64
	// Interval is the decision period (the paper evaluates 0.1s, 0.5s,
	// and 1s).
	Interval des.Time
	// Buckets partitions [0, Target] (default 5).
	Buckets int
	// RetargetCycles is how many QoS-meeting cycles pass between
	// re-sampling the target bucket (Algorithm 1's CycleCount check;
	// default 10).
	RetargetCycles int
	// ProbePeriod is the minimum virtual time between exploratory
	// slowdowns past the learned targets (default 10s). Probing is what
	// tests whether "more aggressive power management settings are
	// acceptable"; each probe that violates QoS costs roughly one
	// detection interval plus recovery, which is why longer decision
	// intervals violate QoS for a larger fraction of time (Table III).
	ProbePeriod des.Time
	// Seed drives the controller's random choices.
	Seed uint64
}

// Manager runs Algorithm 1 against a live simulation.
type Manager struct {
	cfg   Config
	eng   des.Scheduler
	tiers []*Tier
	r     *rng.Source

	e2e     *stats.WindowedTail
	perTier []*stats.WindowedTail

	buckets      []*bucket
	targetBucket int
	target       tuple // per-tier QoS currently in force
	cyclesOnTgt  int

	// Traces for Fig. 16.
	TailTrace *stats.TimeSeries            // end-to-end p99 per cycle (ms)
	FreqTrace map[string]*stats.TimeSeries // per-tier frequency (MHz)

	lastProbe  des.Time
	cycles     int
	violations int
	freqSum    float64 // Σ over cycles of mean tier frequency
	energySum  float64 // Σ over cycles of mean normalized power (f/fnom)³
}

// New creates a controller over the given tiers. Call Attach to wire it to
// a request-completion stream, then Start.
func New(eng des.Scheduler, cfg Config, tiers []*Tier) (*Manager, error) {
	if cfg.Target <= 0 {
		return nil, fmt.Errorf("power: needs a positive QoS target")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("power: needs a positive decision interval")
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("power: needs at least one tier")
	}
	if cfg.Quantile <= 0 || cfg.Quantile >= 1 {
		cfg.Quantile = 0.99
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 5
	}
	if cfg.RetargetCycles <= 0 {
		cfg.RetargetCycles = 10
	}
	if cfg.ProbePeriod <= 0 {
		cfg.ProbePeriod = 10 * des.Second
	}
	m := &Manager{
		cfg:       cfg,
		eng:       eng,
		tiers:     tiers,
		r:         rng.New(cfg.Seed ^ 0x9e37),
		e2e:       stats.NewWindowedTail(cfg.Interval),
		TailTrace: stats.NewTimeSeries("p99"),
		FreqTrace: make(map[string]*stats.TimeSeries),
	}
	for _, tier := range tiers {
		m.perTier = append(m.perTier, stats.NewWindowedTail(cfg.Interval))
		m.FreqTrace[tier.Name] = stats.NewTimeSeries(tier.Name + ".freq")
	}
	width := cfg.Target / des.Time(cfg.Buckets)
	for i := 0; i < cfg.Buckets; i++ {
		m.buckets = append(m.buckets, &bucket{
			lo:         des.Time(i) * width,
			hi:         des.Time(i+1) * width,
			preference: 1,
		})
	}
	m.targetBucket = cfg.Buckets - 1 // start near the QoS boundary
	return m, nil
}

// Observe feeds one completed request into the controller's windows. Wire
// it to sim.Sim.OnRequestDone.
func (m *Manager) Observe(now des.Time, req *job.Request) {
	m.e2e.Record(now, req.Latency())
	for i, tier := range m.tiers {
		if d, ok := req.TierLatency[tier.Name]; ok {
			m.perTier[i].Record(now, d)
		}
	}
}

// Start schedules the first decision cycle.
func (m *Manager) Start() {
	m.eng.After(m.cfg.Interval, m.cycle)
}

// cycle is one pass of Algorithm 1.
func (m *Manager) cycle(now des.Time) {
	defer m.eng.After(m.cfg.Interval, m.cycle)

	p99, ok := m.e2e.Quantile(now, m.cfg.Quantile)
	if !ok {
		return // no traffic this interval
	}
	cur := make(tuple, len(m.tiers))
	for i := range m.tiers {
		if v, vok := m.perTier[i].Quantile(now, m.cfg.Quantile); vok {
			cur[i] = v
		}
	}
	m.cycles++
	m.TailTrace.Record(now, p99.Millis())
	meanF, meanP := 0.0, 0.0
	for _, tier := range m.tiers {
		f := tier.freq()
		m.FreqTrace[tier.Name].Record(now, f)
		meanF += f
		if nom := tier.nominal(); nom > 0 {
			r := f / nom
			meanP += r * r * r
		} else {
			meanP++
		}
	}
	m.freqSum += meanF / float64(len(m.tiers))
	m.energySum += meanP / float64(len(m.tiers))

	if p99 < m.cfg.Target {
		b := m.bucketOf(p99)
		b.insert(cur)
		b.preference *= 1.1
		m.cyclesOnTgt++
		if m.cyclesOnTgt > m.cfg.RetargetCycles {
			m.chooseTarget()
		}
		m.slowDownSlackiest(now, cur, p99)
		return
	}

	// QoS violation.
	m.violations++
	b := m.buckets[m.targetBucket]
	b.preference *= 0.5
	if b.preference < 1e-6 {
		b.preference = 1e-6
	}
	if m.target != nil {
		b.failing = append(b.failing, m.target)
	}
	m.chooseTarget()
	m.speedUpViolators(cur)
}

func (m *Manager) bucketOf(v des.Time) *bucket {
	for _, b := range m.buckets {
		if v >= b.lo && v < b.hi {
			return b
		}
	}
	return m.buckets[len(m.buckets)-1]
}

// chooseTarget samples a bucket by preference and adopts one of its tuples
// as the per-tier QoS.
func (m *Manager) chooseTarget() {
	m.cyclesOnTgt = 0
	total := 0.0
	for _, b := range m.buckets {
		if len(b.tuples) > 0 {
			total += b.preference
		}
	}
	if total <= 0 {
		m.target = nil
		return
	}
	u := m.r.Float64() * total
	for i, b := range m.buckets {
		if len(b.tuples) == 0 {
			continue
		}
		u -= b.preference
		if u <= 0 {
			m.targetBucket = i
			m.target = b.tuples[m.r.IntN(len(b.tuples))]
			return
		}
	}
	m.targetBucket = len(m.buckets) - 1
}

// slowDownSlackiest lowers the frequency of the single tier with the most
// latency slack against its per-tier target — one tier per cycle, per the
// paper, to avoid cascading violations. When no tier shows slack against
// the learned tuple but the end-to-end tail still has headroom against the
// QoS target, the controller probes downward anyway ("the scheduler
// periodically selects a tier with high latency slack to slow down, and
// observes the change in end-to-end performance"); the learned failing
// tuples are what stop it from repeating probes that violated.
func (m *Manager) slowDownSlackiest(now des.Time, cur tuple, p99 des.Time) {
	if m.target != nil {
		best, bestSlack := -1, des.Time(0)
		for i := range m.tiers {
			if !m.tiers[i].canSlowDown() {
				continue
			}
			slack := m.target[i] - cur[i]
			if slack > bestSlack {
				best, bestSlack = i, slack
			}
		}
		if best >= 0 {
			m.tiers[best].step(-m.stepsFor(bestSlack, m.target[best]))
			return
		}
	}
	m.probeSlowdown(now, cur, p99)
}

// stepsFor sizes a slowdown: large relative slack descends several DVFS
// bins at once, small slack probes one bin.
func (m *Manager) stepsFor(slack, ref des.Time) int {
	if ref <= 0 {
		return 1
	}
	frac := float64(slack) / float64(ref)
	switch {
	case frac > 0.75:
		return 3
	case frac > 0.4:
		return 2
	default:
		return 1
	}
}

// probeSlowdown lowers the tier with the smallest measured latency that
// still has DVFS room, sized by the end-to-end headroom against the QoS
// target.
func (m *Manager) probeSlowdown(now des.Time, cur tuple, p99 des.Time) {
	if now-m.lastProbe < m.cfg.ProbePeriod {
		return
	}
	best := -1
	var bestVal des.Time
	for i, v := range cur {
		if !m.tiers[i].canSlowDown() {
			continue
		}
		if best < 0 || v < bestVal {
			best, bestVal = i, v
		}
	}
	if best < 0 {
		return // every tier already at minimum frequency
	}
	m.lastProbe = now
	m.tiers[best].step(-m.stepsFor(m.cfg.Target-p99, m.cfg.Target))
}

// speedUpViolators raises every tier whose measured latency exceeds its
// per-tier target (all tiers when no target is in force).
func (m *Manager) speedUpViolators(cur tuple) {
	for i, tier := range m.tiers {
		if m.target == nil || cur[i] > m.target[i] {
			tier.step(+4)
		}
	}
}

// Cycles reports completed decision cycles.
func (m *Manager) Cycles() int { return m.cycles }

// Violations reports cycles whose windowed p99 exceeded the QoS target.
func (m *Manager) Violations() int { return m.violations }

// ViolationRate reports the fraction of cycles in violation (Table III).
func (m *Manager) ViolationRate() float64 {
	if m.cycles == 0 {
		return 0
	}
	return float64(m.violations) / float64(m.cycles)
}

// MeanFrequency reports the average of the tiers' mean frequency across
// cycles, in MHz.
func (m *Manager) MeanFrequency() float64 {
	if m.cycles == 0 {
		return 0
	}
	return m.freqSum / float64(m.cycles)
}

// NormalizedEnergy reports the mean dynamic-power draw relative to running
// every tier at nominal frequency, using the cubic frequency–power model
// (P ∝ f·V² with V ∝ f). 1.0 means no saving; 0.13 is the floor at
// 1.2/2.6 GHz.
func (m *Manager) NormalizedEnergy() float64 {
	if m.cycles == 0 {
		return 0
	}
	return m.energySum / float64(m.cycles)
}
