package power

import (
	"testing"

	"uqsim/internal/apps"
	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

func TestTupleRelaxation(t *testing.T) {
	a := tuple{10, 20}
	b := tuple{10, 20}
	if !a.noMoreRelaxedThan(b) {
		t.Fatal("equal tuples are not more relaxed")
	}
	c := tuple{11, 20} // more relaxed than b
	if c.noMoreRelaxedThan(b) {
		t.Fatal("c is strictly more relaxed than b")
	}
	d := tuple{9, 25} // incomparable
	if !d.noMoreRelaxedThan(b) {
		t.Fatal("incomparable tuples pass the filter")
	}
	e := tuple{5, 10} // strictly tighter
	if !e.noMoreRelaxedThan(b) {
		t.Fatal("tighter tuples pass the filter")
	}
}

func TestBucketInsertFiltersRelaxed(t *testing.T) {
	b := &bucket{}
	b.failing = append(b.failing, tuple{10, 10})
	b.insert(tuple{11, 11}) // more relaxed than the failing tuple
	if len(b.tuples) != 0 {
		t.Fatal("relaxed tuple should be rejected")
	}
	b.insert(tuple{9, 9})
	if len(b.tuples) != 1 {
		t.Fatal("tighter tuple should insert")
	}
}

func TestBucketInsertBounded(t *testing.T) {
	b := &bucket{}
	for i := 0; i < 200; i++ {
		b.insert(tuple{des.Time(i)})
	}
	if len(b.tuples) > 64 {
		t.Fatalf("tuples unbounded: %d", len(b.tuples))
	}
}

func TestNewValidation(t *testing.T) {
	eng := des.New()
	tiers := []*Tier{{Name: "a"}}
	if _, err := New(eng, Config{Interval: des.Second}, tiers); err == nil {
		t.Fatal("missing target should fail")
	}
	if _, err := New(eng, Config{Target: des.Millisecond}, tiers); err == nil {
		t.Fatal("missing interval should fail")
	}
	if _, err := New(eng, Config{Target: des.Millisecond, Interval: des.Second}, nil); err == nil {
		t.Fatal("missing tiers should fail")
	}
}

// buildManaged wires a power manager onto the 2-tier app under the given
// constant load, and returns both.
func buildManaged(t *testing.T, qps float64, interval des.Time, seed uint64) (*sim.Sim, *Manager) {
	t.Helper()
	s, err := apps.TwoTier(apps.TwoTierConfig{Seed: seed, QPS: qps, Network: true})
	if err != nil {
		t.Fatal(err)
	}
	var tiers []*Tier
	for _, name := range []string{"nginx", "memcached"} {
		dep, ok := s.Deployment(name)
		if !ok {
			t.Fatalf("deployment %s missing", name)
		}
		tier := &Tier{Name: name}
		for _, in := range dep.Instances {
			tier.Allocs = append(tier.Allocs, in.Alloc)
		}
		tiers = append(tiers, tier)
	}
	m, err := New(s.Engine(), Config{
		Target:   5 * des.Millisecond,
		Interval: interval,
		Seed:     seed,
	}, tiers)
	if err != nil {
		t.Fatal(err)
	}
	s.OnRequestDone = m.Observe
	m.Start()
	return s, m
}

func TestManagerLowersFrequencyUnderLightLoad(t *testing.T) {
	s, m := buildManaged(t, 5000, 100*des.Millisecond, 11)
	if _, err := s.Run(0, 10*des.Second); err != nil {
		t.Fatal(err)
	}
	if m.Cycles() < 80 {
		t.Fatalf("cycles = %d", m.Cycles())
	}
	// Light load leaves huge latency slack: the controller should settle
	// well below nominal frequency.
	if m.MeanFrequency() > 2300 {
		t.Fatalf("mean frequency %v MHz, expected meaningful slowdown", m.MeanFrequency())
	}
	// ... while keeping violations rare.
	if m.ViolationRate() > 0.15 {
		t.Fatalf("violation rate %v", m.ViolationRate())
	}
	// Frequencies stay on the DVFS grid.
	for _, tier := range []string{"nginx", "memcached"} {
		for _, p := range m.FreqTrace[tier].Points() {
			f := cluster.DefaultFreqSpec.Clamp(p.V)
			if f != p.V {
				t.Fatalf("tier %s frequency %v off grid", tier, p.V)
			}
		}
	}
}

func TestManagerRecoversFromViolations(t *testing.T) {
	// Heavier load: less slack. The controller must keep QoS violations
	// bounded and react by speeding tiers back up.
	s, m := buildManaged(t, 30000, 100*des.Millisecond, 12)
	if _, err := s.Run(0, 10*des.Second); err != nil {
		t.Fatal(err)
	}
	if m.ViolationRate() > 0.25 {
		t.Fatalf("violation rate %v too high under managed load", m.ViolationRate())
	}
	if m.TailTrace.Len() == 0 {
		t.Fatal("no tail trace")
	}
}

func TestManagerDiurnalViolationRatesGrowWithInterval(t *testing.T) {
	// Table III: longer decision intervals react more slowly to the
	// diurnal swing and violate QoS more often.
	rate := func(interval des.Time) float64 {
		t.Helper()
		pattern := workload.Diurnal{
			Base: 25000, Amplitude: 20000, Period: 6 * des.Second, Floor: 2000,
		}
		s, err := apps.TwoTier(apps.TwoTierConfig{Seed: 13, Pattern: pattern, Network: true})
		if err != nil {
			t.Fatal(err)
		}
		var tiers []*Tier
		for _, name := range []string{"nginx", "memcached"} {
			dep, _ := s.Deployment(name)
			tier := &Tier{Name: name}
			for _, in := range dep.Instances {
				tier.Allocs = append(tier.Allocs, in.Alloc)
			}
			tiers = append(tiers, tier)
		}
		m, err := New(s.Engine(), Config{Target: 5 * des.Millisecond, Interval: interval, Seed: 13}, tiers)
		if err != nil {
			t.Fatal(err)
		}
		s.OnRequestDone = m.Observe
		m.Start()
		if _, err := s.Run(0, 12*des.Second); err != nil {
			t.Fatal(err)
		}
		return m.ViolationRate()
	}
	fast := rate(100 * des.Millisecond)
	slow := rate(des.Second)
	if fast > slow+0.02 {
		t.Fatalf("violation rates: 0.1s=%v should not exceed 1s=%v", fast, slow)
	}
	if slow > 0.4 {
		t.Fatalf("1s violation rate %v implausibly high", slow)
	}
}

func TestNormalizedEnergyBounds(t *testing.T) {
	s, m := buildManaged(t, 5000, 100*des.Millisecond, 14)
	if _, err := s.Run(0, 5*des.Second); err != nil {
		t.Fatal(err)
	}
	e := m.NormalizedEnergy()
	if e <= 0 || e > 1 {
		t.Fatalf("normalized energy %v outside (0,1]", e)
	}
	// Cubic model floor: (1200/2600)³ ≈ 0.098.
	if e < 0.09 {
		t.Fatalf("normalized energy %v below physical floor", e)
	}
	// Light load should save meaningful energy vs nominal.
	if e > 0.8 {
		t.Fatalf("normalized energy %v, expected real savings at light load", e)
	}
}

func TestViolationsTriggerSpeedUp(t *testing.T) {
	// Run close to capacity with a tight QoS so violations occur and the
	// recovery path exercises.
	s, err := apps.TwoTier(apps.TwoTierConfig{Seed: 15, QPS: 72000, Network: true})
	if err != nil {
		t.Fatal(err)
	}
	var tiers []*Tier
	for _, name := range []string{"nginx", "memcached"} {
		dep, _ := s.Deployment(name)
		tier := &Tier{Name: name}
		for _, in := range dep.Instances {
			tier.Allocs = append(tier.Allocs, in.Alloc)
		}
		tiers = append(tiers, tier)
	}
	m, err := New(s.Engine(), Config{
		Target:   500 * des.Microsecond, // tight: ~p99 at this load
		Interval: 100 * des.Millisecond,
		Seed:     15,
	}, tiers)
	if err != nil {
		t.Fatal(err)
	}
	// Start one tier slowed so a violation is guaranteed early.
	tiers[0].step(-6)
	s.OnRequestDone = m.Observe
	m.Start()
	if _, err := s.Run(0, 3*des.Second); err != nil {
		t.Fatal(err)
	}
	if m.Violations() == 0 {
		t.Fatal("expected violations at tight QoS near capacity")
	}
	if m.ViolationRate() <= 0 || m.ViolationRate() > 1 {
		t.Fatalf("violation rate %v", m.ViolationRate())
	}
	// Recovery must have pushed nginx back toward nominal.
	if tiers[0].freq() < 1800 {
		t.Fatalf("nginx freq %v after violations, expected recovery upward", tiers[0].freq())
	}
}
