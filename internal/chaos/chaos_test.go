package chaos

import (
	"os"
	"path/filepath"
	"testing"

	"uqsim/internal/config"
	"uqsim/internal/rng"
)

const metastableDir = "../../configs/metastable"

// The committed corpus under configs/metastable/corpus is a live
// regression suite: every archived finding must still reproduce — same
// violation, bit-identical fingerprint — on today's code.
func TestReplayCommittedCorpus(t *testing.T) {
	entries, err := Entries(filepath.Join(metastableDir, "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("committed corpus is empty; expected at least one entry")
	}
	for _, entry := range entries {
		t.Run(filepath.Base(entry), func(t *testing.T) {
			res, err := Replay(metastableDir, entry)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation == nil {
				t.Fatalf("replay found no violation; recorded %q", res.Meta.Violation)
			}
			if res.Violation.ID != res.Meta.Violation {
				t.Fatalf("replay violation %q, recorded %q", res.Violation.ID, res.Meta.Violation)
			}
			if res.Fingerprint != res.Meta.Fingerprint {
				t.Fatalf("replay fingerprint diverged:\n  recorded: %s\n  replayed: %s",
					res.Meta.Fingerprint, res.Fingerprint)
			}
			if !res.Matches() {
				t.Fatal("Matches() false despite matching parts")
			}
			if res.Meta.Events > 8 {
				t.Fatalf("committed repro has %d events; shrinking should have reached ≤ 8", res.Meta.Events)
			}
		})
	}
}

// A fresh search on the metastable config must rediscover the seeded
// retry-storm metastability, shrink it, and emit a corpus entry that
// replays to the identical finding.
func TestSearchFindsShrinksAndArchives(t *testing.T) {
	corpus := t.TempDir()
	res, err := Run(Options{
		ConfigDir: metastableDir,
		Seed:      1,
		Trials:    2,
		CorpusDir: corpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("unexpected interruption")
	}
	if len(res.Findings) == 0 {
		t.Fatal("search found no violations on the known-bad config")
	}
	for _, f := range res.Findings {
		if f.Violation != "recovery-goodput" {
			t.Errorf("trial %d: violation %q, want recovery-goodput", f.Trial, f.Violation)
		}
		if f.Events > 8 {
			t.Errorf("trial %d: shrunk to %d events, want ≤ 8", f.Trial, f.Events)
		}
		if f.Events > f.EventsBefore {
			t.Errorf("trial %d: shrinking grew the schedule (%d → %d)", f.Trial, f.EventsBefore, f.Events)
		}
		rr, err := Replay(metastableDir, f.Dir)
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Matches() {
			t.Errorf("trial %d: archived entry does not replay to the recorded finding", f.Trial)
		}
	}
}

// The no-fault scenario must pass every invariant — otherwise the search
// would "find" violations that are really baseline misconfiguration.
func TestEmptyScenarioPasses(t *testing.T) {
	h := newTestHarness(t)
	v, fp, err := h.Verify(Scenario{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("empty scenario violates %v", v)
	}
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
}

// The same master seed must generate the same scenarios: the search is
// reproducible end to end.
func TestGenerateDeterministic(t *testing.T) {
	h := newTestHarness(t)
	gen := func() []string {
		child := rng.NewSplitter(7).Child("chaos", "0")
		sc := h.Generate(child.Stream("schedule"), child.Stream("seed").Uint64())
		return sc.Labels()
	}
	a, b := gen(), gen()
	if len(a) == 0 {
		t.Fatal("generator produced no actions")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("action %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

// Every generated fault must heal inside the run, leaving a measurable
// recovery window — otherwise the recovery invariants silently disarm.
func TestGeneratedScenariosHeal(t *testing.T) {
	h := newTestHarness(t)
	split := rng.NewSplitter(3)
	for trial := 0; trial < 20; trial++ {
		child := split.Child("chaos", string(rune('a'+trial)))
		sc := h.Generate(child.Stream("schedule"), child.Stream("seed").Uint64())
		_, ff, err := h.Materialize(sc)
		if err != nil {
			t.Fatal(err)
		}
		lastHealS, ok := h.healAnalysis(ff)
		if !ok {
			t.Fatalf("trial %d generated a never-healing schedule: %v", trial, sc.Labels())
		}
		if lastHealS > 0.65*h.horizonS+1e-9 {
			t.Fatalf("trial %d heals at %.2fs, past the 0.65·horizon deadline", trial, lastHealS)
		}
	}
}

func TestHealAnalysis(t *testing.T) {
	h := newTestHarness(t)
	cases := []struct {
		name     string
		ff       config.FaultsFile
		wantOK   bool
		wantHeal float64
	}{
		{name: "empty", ff: config.FaultsFile{}, wantOK: false},
		{
			name: "crash without recover",
			ff: config.FaultsFile{Events: []config.FaultEventSpec{
				{AtS: 1, Kind: "crash_machine", Machine: "m0"},
			}},
			wantOK: false,
		},
		{
			name: "crash recover pair",
			ff: config.FaultsFile{Events: []config.FaultEventSpec{
				{AtS: 1, Kind: "crash_machine", Machine: "m0"},
				{AtS: 1.5, Kind: "recover_machine", Machine: "m0"},
			}},
			wantOK: true, wantHeal: 1.5,
		},
		{
			name: "permanent window",
			ff: config.FaultsFile{Events: []config.FaultEventSpec{
				{AtS: 1, Kind: "load_step", Factor: 2},
			}},
			wantOK: false,
		},
		{
			name: "windowed heals at until",
			ff: config.FaultsFile{Events: []config.FaultEventSpec{
				{AtS: 1, Kind: "edge_latency", Service: "backend", ExtraMs: 2, UntilS: 2.25},
			}},
			wantOK: true, wantHeal: 2.25,
		},
		{
			name: "unhealed partition",
			ff: config.FaultsFile{Network: &config.NetFaultSpec{
				Partitions: []config.PartitionSpec{{AtS: 1, GroupA: []string{"m0"}, GroupB: []string{"m1"}}},
			}},
			wantOK: false,
		},
		{
			name: "healed partition",
			ff: config.FaultsFile{Network: &config.NetFaultSpec{
				Partitions: []config.PartitionSpec{{AtS: 1, UntilS: 1.75, GroupA: []string{"m0"}, GroupB: []string{"m1"}}},
			}},
			wantOK: true, wantHeal: 1.75,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			heal, ok := h.healAnalysis(&tc.ff)
			if ok != tc.wantOK {
				t.Fatalf("ok=%v, want %v", ok, tc.wantOK)
			}
			if ok && heal != tc.wantHeal {
				t.Fatalf("heal=%v, want %v", heal, tc.wantHeal)
			}
		})
	}
}

// ddmin plumbing: split must partition and complements must invert it.
func TestSplitComplements(t *testing.T) {
	actions := []Action{{Label: "a"}, {Label: "b"}, {Label: "c"}, {Label: "d"}, {Label: "e"}}
	for n := 2; n <= len(actions); n++ {
		chunks := split(actions, n)
		if len(chunks) != n {
			t.Fatalf("split(%d) returned %d chunks", n, len(chunks))
		}
		total := 0
		for i, c := range chunks {
			total += len(c)
			comp := complements(actions, chunks)[i]
			if len(c)+len(comp) != len(actions) {
				t.Fatalf("chunk %d/%d: |chunk|+|complement| = %d+%d ≠ %d", i, n, len(c), len(comp), len(actions))
			}
		}
		if total != len(actions) {
			t.Fatalf("split(%d) covers %d actions, want %d", n, total, len(actions))
		}
	}
}

// An immediately tripped Interrupted flag must stop the search before any
// trial runs and mark the result partial.
func TestRunInterrupted(t *testing.T) {
	res, err := Run(Options{
		ConfigDir:   metastableDir,
		Seed:        1,
		Trials:      5,
		Interrupted: func() bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("result not marked interrupted")
	}
	if res.Trials != 0 {
		t.Fatalf("%d trials ran despite interruption", res.Trials)
	}
}

// Entries must skip half-written artifacts: a directory is only a corpus
// entry once its meta.json (written last) exists.
func TestEntriesSkipsIncomplete(t *testing.T) {
	dir := t.TempDir()
	complete := filepath.Join(dir, "trial0000-drain")
	partial := filepath.Join(dir, "trial0001-drain")
	for _, d := range []string{complete, partial} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d, "faults.json"), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(complete, "meta.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := Entries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0] != complete {
		t.Fatalf("Entries = %v, want just %s", entries, complete)
	}
	// A missing corpus dir is an empty corpus, not an error.
	none, err := Entries(filepath.Join(dir, "missing"))
	if err != nil || len(none) != 0 {
		t.Fatalf("missing dir: entries=%v err=%v", none, err)
	}
}

// Closed-loop configs never drain; the harness must refuse them up front.
func TestRejectsClosedLoop(t *testing.T) {
	dir := t.TempDir()
	base, err := config.ReadBase(metastableDir)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{
		"machines.json": base.Machines,
		"service.json":  base.Services,
		"graph.json":    base.Graph,
		"path.json":     base.Paths,
		"client.json":   []byte(`{"seed":1,"closed_users":10,"think":{"type":"deterministic","value_us":1000},"duration_s":1}`),
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewHarness(Options{ConfigDir: dir}); err == nil {
		t.Fatal("closed-loop config accepted")
	}
}

func newTestHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(Options{ConfigDir: metastableDir})
	if err != nil {
		t.Fatal(err)
	}
	return h
}
