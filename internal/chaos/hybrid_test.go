package chaos

import (
	"path/filepath"
	"testing"
)

// TestReplayCorpusHybridRateOne: hybrid mode at sample rate 1.0 is
// contractually inert, so every committed corpus entry must still replay
// to the recorded finding bit-for-bit — violation and fingerprint.
func TestReplayCorpusHybridRateOne(t *testing.T) {
	entries, err := Entries(filepath.Join(metastableDir, "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("committed corpus is empty; expected at least one entry")
	}
	for _, entry := range entries {
		t.Run(filepath.Base(entry), func(t *testing.T) {
			res, err := ReplayWith(metastableDir, entry, "hybrid", 1.0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Matches() {
				got := "<none>"
				if res.Violation != nil {
					got = res.Violation.ID
				}
				t.Fatalf("hybrid rate-1.0 replay diverged from recorded finding:\n  violation: %s (recorded %s)\n  recorded fp: %s\n  replayed fp: %s",
					got, res.Meta.Violation, res.Meta.Fingerprint, res.Fingerprint)
			}
		})
	}
}

// TestReplayCorpusHybridSampled: replaying the corpus with a real fidelity
// split re-judges the invariants on the hybrid tier's own books. The
// fingerprint legitimately differs from the recorded full-DES one, but
// conservation — foreground identity plus background buckets and per-fault
// attribution — must hold under every archived fault schedule.
func TestReplayCorpusHybridSampled(t *testing.T) {
	entries, err := Entries(filepath.Join(metastableDir, "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range entries {
		t.Run(filepath.Base(entry), func(t *testing.T) {
			res, err := ReplayWith(metastableDir, entry, "hybrid", 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil && res.Violation.ID == "conservation" {
				t.Fatalf("sampled hybrid replay broke conservation: %s", res.Violation.Detail)
			}
			if res.Violation != nil && res.Violation.ID == "cross-fidelity" {
				t.Fatalf("sample-rate-1.0 inertness broke under archived schedule: %s", res.Violation.Detail)
			}
		})
	}
}

// TestEmptyScenarioPassesHybrid: the no-fault scenario must pass the full
// battery in hybrid mode too — including the cross-fidelity invariant
// (sample-rate-1.0 bit-identical to full DES) and worker-count
// determinism of the fluid tier.
func TestEmptyScenarioPassesHybrid(t *testing.T) {
	h, err := NewHarness(Options{ConfigDir: metastableDir, Fidelity: "hybrid", SampleRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	v, fp, err := h.Verify(Scenario{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("empty scenario violates %v in hybrid mode", v)
	}
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
}

// TestHybridSearchRuns: a short hybrid-mode search completes; whatever it
// finds on the deliberately fragile metastable config, the cross-fidelity
// and conservation invariants must never be among the violations — those
// would be hybrid-tier accounting bugs, not config fragility.
func TestHybridSearchRuns(t *testing.T) {
	res, err := Run(Options{
		ConfigDir:  metastableDir,
		Seed:       1,
		Trials:     2,
		CorpusDir:  t.TempDir(),
		Fidelity:   "hybrid",
		SampleRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("unexpected interruption")
	}
	if res.Trials != 2 {
		t.Fatalf("ran %d trials, want 2", res.Trials)
	}
	for _, f := range res.Findings {
		if f.Violation == "conservation" || f.Violation == "cross-fidelity" {
			t.Errorf("trial %d: hybrid-tier invariant broke: %s (%s)", f.Trial, f.Violation, f.Detail)
		}
	}
}
