// Package chaos is µqSim's property-based fault-schedule explorer: a
// seeded generator composes randomized schedules from the full fault
// vocabulary (machine and instance crashes, DVFS degradation, partitions,
// gray links, correlated domain bursts, load steps) against a config
// directory, runs each scenario, and checks a battery of invariants —
// request conservation, post-run drain, sequential-vs-parallel fingerprint
// determinism, and recovery properties (goodput and tail latency return to
// baseline after the last fault heals; no breaker, region, or ejection
// stays stuck). Violations are delta-debugged down to a minimal
// reproducing schedule and emitted as replayable faults.json + seed
// artifacts, so every chaos finding becomes a committed regression test.
//
// Everything is deterministic: the same master seed explores the same
// scenarios, and a corpus entry replays bit-identically (same fingerprint,
// same violation) on any machine.
package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"uqsim/internal/config"
	"uqsim/internal/des"
	"uqsim/internal/job"
	"uqsim/internal/rng"
	"uqsim/internal/stats"
	"uqsim/internal/validate"
)

// ErrInterrupted reports that a watchdog or signal stopped the simulation
// mid-run; the partial results are not trustworthy and the search loop
// winds down, keeping whatever corpus it already flushed.
var ErrInterrupted = errors.New("chaos: interrupted")

// Options configures a chaos search.
type Options struct {
	// ConfigDir is the config directory scenarios run against. Closed-loop
	// clients are rejected: they never drain, so the invariants are
	// undefined.
	ConfigDir string
	// Seed drives the whole search: scenario generation and per-trial
	// simulation seeds all derive from it.
	Seed uint64
	// Trials bounds the number of scenarios explored.
	Trials int
	// CorpusDir receives one replayable artifact directory per finding
	// (faults.json + meta.json); empty disables artifact writing.
	CorpusDir string
	// MaxActions bounds the generated schedule size (default 6 actions;
	// an action is one self-healing fault plus its heal events).
	MaxActions int
	// GoodputFrac is the recovery invariant's floor: post-heal goodput
	// below this fraction of the no-fault baseline is a violation
	// (default 0.5).
	GoodputFrac float64
	// P99Factor and P99SlackMs bound post-heal tail latency: p99 above
	// baseline·factor + slack is a violation (defaults 3 and 20ms).
	P99Factor  float64
	P99SlackMs float64
	// Workers lists the parallel-engine worker counts checked against the
	// sequential fingerprint (default 2 and 4).
	Workers []int
	// Fidelity selects the fidelity every scenario runs at: "" or "full"
	// for pure DES, "hybrid" for sampled-foreground + fluid-background
	// (see config.ApplyFidelity). Hybrid mode additionally checks the
	// cross-fidelity invariant: a sample-rate-1.0 hybrid run must stay
	// bit-identical to full DES under every generated fault schedule.
	Fidelity string
	// SampleRate overrides the hybrid foreground sample rate (default
	// 0.01 when Fidelity is "hybrid").
	SampleRate float64
	// Interrupted, when non-nil, is polled between runs (wire it to
	// cli.Watchdog.Interrupted) so a signal stops the search cleanly.
	Interrupted func() bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Trials <= 0 {
		out.Trials = 50
	}
	if out.MaxActions <= 0 {
		out.MaxActions = 6
	}
	if out.GoodputFrac <= 0 {
		out.GoodputFrac = 0.5
	}
	if out.P99Factor <= 0 {
		out.P99Factor = 3
	}
	if out.P99SlackMs <= 0 {
		out.P99SlackMs = 20
	}
	if len(out.Workers) == 0 {
		out.Workers = []int{2, 4}
	}
	if out.Interrupted == nil {
		out.Interrupted = func() bool { return false }
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Violation is one failed invariant.
type Violation struct {
	// ID names the invariant: conservation, drain, stuck-breaker,
	// lost-region, stuck-ejection, recovery-goodput, recovery-p99, or
	// determinism.
	ID string
	// Detail is the human-readable evidence.
	Detail string
}

func (v *Violation) String() string { return v.ID + ": " + v.Detail }

// Finding is one violation discovered by the search, already shrunk.
type Finding struct {
	Trial     int
	Seed      uint64
	Violation string
	Detail    string
	// Scenario is the minimal reproducing schedule.
	Scenario Scenario
	// EventsBefore and Events count the schedule's fault events before
	// and after shrinking.
	EventsBefore int
	Events       int
	// Fingerprint is the sequential run's report fingerprint — what a
	// replay must reproduce bit-for-bit.
	Fingerprint string
	// Dir is the corpus artifact directory ("" when no corpus is kept).
	Dir string
}

// Result summarizes one search.
type Result struct {
	Trials      int
	Findings    []Finding
	Interrupted bool
}

// Harness holds everything needed to run scenarios against one config
// directory: the parsed base documents, the optional base fault and
// control files, and the extracted world model the generator draws from.
type Harness struct {
	opts       Options
	docs       *config.BaseDocs
	baseFaults *config.FaultsFile
	control    []byte
	world      world
	horizonS   float64
	horizon    des.Time

	// baselineCache memoizes no-fault baseline runs keyed by (seed,
	// recovery-window start): shrink probes share them.
	baselineCache map[[2]uint64]*windowStats
}

// world is the generator's view of the config: what exists to break.
type world struct {
	machines     []string
	freqMachines []freqMachine
	domains      []string
	domainSize   map[string]int
	services     []svcInfo
}

type freqMachine struct {
	name     string
	min, max float64
}

type svcInfo struct {
	name      string
	instances int
}

// windowStats are the recovery-window measurements of one run.
type windowStats struct {
	good uint64
	hist *stats.LatencyHist
}

// NewHarness parses the config directory and builds the world model.
func NewHarness(opts Options) (*Harness, error) {
	o := opts.withDefaults()
	docs, err := config.ReadBase(o.ConfigDir)
	if err != nil {
		return nil, err
	}
	var mf config.MachinesFile
	if err := json.Unmarshal(docs.Machines, &mf); err != nil {
		return nil, fmt.Errorf("chaos: machines.json: %w", err)
	}
	var gf config.GraphFile
	if err := json.Unmarshal(docs.Graph, &gf); err != nil {
		return nil, fmt.Errorf("chaos: graph.json: %w", err)
	}
	var cf config.ClientFile
	if err := json.Unmarshal(docs.Client, &cf); err != nil {
		return nil, fmt.Errorf("chaos: client.json: %w", err)
	}
	if cf.ClosedUsers > 0 {
		return nil, fmt.Errorf("chaos: %s uses a closed-loop client, which never drains; chaos search needs an open-loop config", o.ConfigDir)
	}
	if cf.DurationS <= 0 {
		return nil, fmt.Errorf("chaos: %s client.json needs a positive duration_s", o.ConfigDir)
	}

	h := &Harness{
		opts:          o,
		docs:          docs,
		horizonS:      cf.WarmupS + cf.DurationS,
		baselineCache: make(map[[2]uint64]*windowStats),
	}
	h.horizon = des.FromSeconds(h.horizonS)
	h.world.domainSize = make(map[string]int)
	for _, m := range mf.Machines {
		h.world.machines = append(h.world.machines, m.Name)
		if m.Freq != nil && m.Freq.MaxMHz > 0 {
			h.world.freqMachines = append(h.world.freqMachines, freqMachine{
				name: m.Name, min: m.Freq.MinMHz, max: m.Freq.MaxMHz,
			})
		}
	}
	if mf.Topology != nil {
		for _, d := range mf.Topology.Domains {
			h.world.domains = append(h.world.domains, d.Name)
			h.world.domainSize[d.Name] = len(d.Machines)
		}
		for _, r := range mf.Topology.Regions {
			n := len(r.Machines)
			for _, rack := range r.Racks {
				n += h.world.domainSize[rack]
			}
			h.world.domains = append(h.world.domains, r.Name)
			h.world.domainSize[r.Name] = n
		}
	}
	for _, d := range gf.Deployments {
		h.world.services = append(h.world.services, svcInfo{name: d.Service, instances: len(d.Instances)})
	}

	ffPath := filepath.Join(o.ConfigDir, "faults.json")
	if data, err := os.ReadFile(ffPath); err == nil {
		h.baseFaults = &config.FaultsFile{}
		if err := json.Unmarshal(data, h.baseFaults); err != nil {
			return nil, fmt.Errorf("chaos: %s: %w", ffPath, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("chaos: reading %s: %w", ffPath, err)
	}
	ctlPath := filepath.Join(o.ConfigDir, "control.json")
	if data, err := os.ReadFile(ctlPath); err == nil {
		h.control = data
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("chaos: reading %s: %w", ctlPath, err)
	}
	return h, nil
}

// TrialResult is the outcome of one independent trial: either the
// invariants held (Finding nil) or a shrunk, replayable violation. A
// trial is a pure function of the harness options and the trial index, so
// trials can run in any order, on any process — the experiment farm fans
// them out across workers and merges TrialResults back into the same
// corpus a serial search writes.
type TrialResult struct {
	Trial int
	// Events is the explored schedule's fault-event count (pre-shrink).
	Events int
	// Finding is nil when every invariant held.
	Finding *Finding
	// Entry is the portable corpus artifact for Finding (nil when ok).
	Entry *Entry
}

// Trial generates, verifies, and (on violation) shrinks the trial'th
// scenario of the search seeded by the harness options. It never touches
// the corpus directory; use ArchiveEntry (or Run, which does both) to
// persist the artifact.
func (h *Harness) Trial(trial int) (*TrialResult, error) {
	child := rng.NewSplitter(h.opts.Seed).Child("chaos", fmt.Sprint(trial))
	sc := h.Generate(child.Stream("schedule"), child.Stream("seed").Uint64())
	tr := &TrialResult{Trial: trial, Events: sc.EventCount()}
	v, _, err := h.Verify(sc)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return tr, nil
	}
	h.opts.Logf("trial %d (seed %d): VIOLATION %s — shrinking %d events", trial, sc.Seed, v.ID, sc.EventCount())
	f, faultsJSON, err := h.shrinkFinding(trial, sc, v)
	if err != nil {
		return nil, err
	}
	tr.Finding = f
	tr.Entry, err = findingEntry(f, faultsJSON)
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// Run explores opts.Trials scenarios, shrinking and archiving every
// violation found. This is the cmd/uqsim-chaos entry point.
func Run(opts Options) (*Result, error) {
	h, err := NewHarness(opts)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for trial := 0; trial < h.opts.Trials; trial++ {
		if h.opts.Interrupted() {
			res.Interrupted = true
			break
		}
		tr, err := h.Trial(trial)
		if errors.Is(err, ErrInterrupted) {
			res.Interrupted = true
			break
		}
		if err != nil {
			return res, err
		}
		res.Trials++
		if tr.Finding == nil {
			h.opts.Logf("trial %d: %d events ok", trial, tr.Events)
			continue
		}
		f := tr.Finding
		if h.opts.CorpusDir != "" {
			dir, err := ArchiveEntry(h.opts.CorpusDir, tr.Entry)
			if err != nil {
				return res, err
			}
			f.Dir = dir
		}
		res.Findings = append(res.Findings, *f)
		h.opts.Logf("trial %d: shrunk to %d events (%s), archived %s", trial, f.Events, f.Violation, f.Dir)
	}
	if !res.Interrupted && h.opts.Interrupted() {
		res.Interrupted = true
	}
	return res, nil
}

// shrinkFinding reduces a violating scenario to its minimal form,
// re-verifies it, and materializes the minimal fault plan.
func (h *Harness) shrinkFinding(trial int, sc Scenario, v *Violation) (*Finding, []byte, error) {
	min, err := h.Shrink(sc, v.ID)
	if err != nil {
		return nil, nil, err
	}
	minV, fp, err := h.Verify(min)
	if err != nil {
		return nil, nil, err
	}
	if minV == nil || minV.ID != v.ID {
		// Shrinking never leaves a non-reproducing scenario: ddmin only
		// commits subsets that reproduce. A mismatch here is a harness bug.
		return nil, nil, fmt.Errorf("chaos: shrunk scenario no longer reproduces %s", v.ID)
	}
	f := &Finding{
		Trial:        trial,
		Seed:         min.Seed,
		Violation:    minV.ID,
		Detail:       minV.Detail,
		Scenario:     min,
		EventsBefore: sc.EventCount(),
		Events:       min.EventCount(),
		Fingerprint:  fp,
	}
	faultsJSON, _, err := h.Materialize(min)
	if err != nil {
		return nil, nil, err
	}
	return f, faultsJSON, nil
}

// goodCompletion reports whether a finished request counts toward
// recovery-window goodput: delivered within the client's patience.
func goodCompletion(req *job.Request) bool {
	return req.Done() && !req.Failed && !req.TimedOut
}

// conservationID asserts validate.Conservation as a chaos violation.
func conservationViolation(err error) *Violation {
	return &Violation{ID: "conservation", Detail: err.Error()}
}

var _ = validate.Conservation // referenced from verify.go
