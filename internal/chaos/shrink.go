package chaos

// Shrink delta-debugs a violating scenario down to a locally minimal one:
// the classic ddmin loop over whole actions, where a candidate subset
// "reproduces" iff verifying it yields the same violation ID. Removing any
// single remaining action from the result makes the violation disappear,
// so the minimum is the sharpest repro this granularity can state.
//
// Shrinking keeps the scenario's seed fixed — the point is a deterministic
// artifact, and the violation must reproduce under the seed that found it.
func (h *Harness) Shrink(sc Scenario, targetID string) (Scenario, error) {
	actions := sc.Actions
	reproduces := func(subset []Action) (bool, error) {
		if h.opts.Interrupted() {
			return false, ErrInterrupted
		}
		v, _, err := h.Verify(Scenario{Seed: sc.Seed, Actions: subset})
		if err != nil {
			return false, err
		}
		return v != nil && v.ID == targetID, nil
	}

	n := 2
	for len(actions) >= 2 {
		chunks := split(actions, n)
		reduced := false
		// Try each chunk alone, then each chunk's complement.
		for _, cand := range append(chunks, complements(actions, chunks)...) {
			if len(cand) == 0 || len(cand) == len(actions) {
				continue
			}
			ok, err := reproduces(cand)
			if err != nil {
				return sc, err
			}
			if ok {
				actions = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(actions) {
				break // 1-minimal at action granularity
			}
			n = min(2*n, len(actions))
		}
	}
	return Scenario{Seed: sc.Seed, Actions: actions}, nil
}

// split partitions actions into n nearly equal contiguous chunks.
func split(actions []Action, n int) [][]Action {
	if n > len(actions) {
		n = len(actions)
	}
	out := make([][]Action, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(actions)/n, (i+1)*len(actions)/n
		out = append(out, actions[lo:hi])
	}
	return out
}

// complements returns, for each chunk, the actions outside it.
func complements(actions []Action, chunks [][]Action) [][]Action {
	out := make([][]Action, 0, len(chunks))
	pos := 0
	for _, c := range chunks {
		comp := make([]Action, 0, len(actions)-len(c))
		comp = append(comp, actions[:pos]...)
		comp = append(comp, actions[pos+len(c):]...)
		out = append(out, comp)
		pos += len(c)
	}
	return out
}
