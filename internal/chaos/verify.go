package chaos

import (
	"fmt"
	"math"
	"strings"

	"uqsim/internal/config"
	"uqsim/internal/control"
	"uqsim/internal/des"
	"uqsim/internal/job"
	"uqsim/internal/sim"
	"uqsim/internal/stats"
	"uqsim/internal/validate"
)

// drainRounds bounds the drain invariant's patience: after the measured
// window the engine runs up to this many extra horizons, one at a time,
// re-checking emptiness after each. Metastable scenarios legitimately
// carry a retry backlog of many horizons' worth of work (a 0.4s partition
// can queue 70k+ jobs behind a 1k/s backend), so patience must scale far
// past the horizon — but each empty-queue round costs O(1), so the cap is
// generous. Whatever remains after all rounds is a real leak.
const drainRounds = 100

// minWindowSamples is the fewest recovery-window completions (in both the
// baseline and the faulted run) the recovery invariants need before they
// judge: below this the comparison is noise.
const minWindowSamples = 20

// Verify runs the scenario and checks every invariant, in severity order:
// conservation, drain, stuck breaker / region / ejection, recovery
// goodput and p99 against a no-fault baseline, and sequential-vs-parallel
// fingerprint determinism. It returns the first violation (nil if the
// scenario passes) plus the sequential run's fingerprint, which a corpus
// replay must reproduce exactly.
func (h *Harness) Verify(sc Scenario) (*Violation, string, error) {
	faultsJSON, ff, err := h.Materialize(sc)
	if err != nil {
		return nil, "", err
	}
	return h.verifyFaults(sc.Seed, faultsJSON, ff)
}

// verifyFaults is Verify on an already-materialized fault plan — the shared
// path between generated scenarios and corpus replays.
func (h *Harness) verifyFaults(seed uint64, faultsJSON []byte, ff *config.FaultsFile) (*Violation, string, error) {
	winStart := h.recoveryWindowStart(ff)

	run, err := h.runOnce(h.docs, seed, 1, faultsJSON, winStart, h.opts.Fidelity, h.opts.SampleRate)
	if err != nil {
		return nil, "", err
	}
	fp := run.fingerprint

	// Conservation: no request may vanish from the ledger.
	if err := validate.Conservation(run.report); err != nil {
		return conservationViolation(err), fp, nil
	}
	// Drain: with the generator stopped and generous slack, every queue,
	// pool token, and in-flight call must empty.
	if err := run.drain(h); err != nil {
		if err == ErrInterrupted {
			return nil, "", err
		}
		return &Violation{ID: "drain", Detail: err.Error()}, fp, nil
	}
	// Stuck breaker: after the drain no probe can still be outstanding —
	// a half-open breaker holding its probe slot with zero live calls
	// will refuse traffic forever.
	for _, b := range run.sim.Breakers() {
		if b.Probing {
			return &Violation{
				ID:     "stuck-breaker",
				Detail: fmt.Sprintf("breaker %s stuck %v with its half-open probe slot held after full drain (%d trips)", b.Edge, b.State, b.Trips),
			}, fp, nil
		}
	}
	// Lost region: every region declared lost must be restored once its
	// machines recover.
	if run.plane != nil {
		if lost := run.plane.LostRegions(); len(lost) > 0 {
			return &Violation{
				ID:     "lost-region",
				Detail: fmt.Sprintf("regions still declared lost after all faults healed: %s", strings.Join(lost, ", ")),
			}, fp, nil
		}
	}
	// Stuck ejection: outlier detection must reinstate instances once
	// they behave again.
	for _, d := range run.sim.Deployments() {
		if n := d.EjectedCount(); n > 0 {
			return &Violation{
				ID:     "stuck-ejection",
				Detail: fmt.Sprintf("service %s still has %d instance(s) ejected after full drain", d.Name, n),
			}, fp, nil
		}
	}
	// Recovery: after the last fault heals, goodput and tail latency must
	// return to the no-fault baseline's neighbourhood.
	if winStart > 0 && run.window != nil {
		base, err := h.baseline(seed, winStart)
		if err != nil {
			return nil, "", err
		}
		if v := h.checkRecovery(run.window, base); v != nil {
			return v, fp, nil
		}
	}
	// Determinism: the parallel engine must reproduce the sequential
	// fingerprint bit-for-bit at every worker count.
	for _, w := range h.opts.Workers {
		prun, err := h.runOnce(h.docs, seed, w, faultsJSON, 0, h.opts.Fidelity, h.opts.SampleRate)
		if err != nil {
			return nil, "", err
		}
		if prun.fingerprint != fp {
			return &Violation{
				ID:     "determinism",
				Detail: fmt.Sprintf("workers=%d fingerprint diverges from sequential:\n  seq: %s\n  par: %s", w, fp, prun.fingerprint),
			}, fp, nil
		}
	}
	// Cross-fidelity: in hybrid mode, a sample-rate-1.0 hybrid run is
	// contractually inert — no extra random draws, no background
	// accounting — so its fingerprint must match full DES bit-for-bit
	// under this fault schedule too.
	if h.hybridMode() {
		full, err := h.runOnce(h.docs, seed, 1, faultsJSON, 0, "full", 0)
		if err != nil {
			return nil, "", err
		}
		inert, err := h.runOnce(h.docs, seed, 1, faultsJSON, 0, "hybrid", 1)
		if err != nil {
			return nil, "", err
		}
		if inert.fingerprint != full.fingerprint {
			return &Violation{
				ID:     "cross-fidelity",
				Detail: fmt.Sprintf("hybrid sample-rate-1.0 fingerprint diverges from full DES:\n  full:   %s\n  hybrid: %s", full.fingerprint, inert.fingerprint),
			}, fp, nil
		}
	}
	return nil, fp, nil
}

// hybridMode reports whether the search runs its scenarios at hybrid
// fidelity, which arms the cross-fidelity invariant.
func (h *Harness) hybridMode() bool { return strings.EqualFold(h.opts.Fidelity, "hybrid") }

// runResult is one completed simulation plus its measurements.
type runResult struct {
	sim         *sim.Sim
	plane       *control.Plane
	report      *sim.Report
	fingerprint string
	window      *windowStats
	horizon     des.Time
}

// drain runs the engine past the measured window, one horizon at a time
// for up to drainRounds horizons, until the simulation empties. The
// returned error is the last round's violation evidence, or
// ErrInterrupted when a watchdog stopped the engine.
func (r *runResult) drain(h *Harness) error {
	var err error
	for i := des.Time(1); i <= drainRounds; i++ {
		if h.opts.Interrupted() {
			return ErrInterrupted
		}
		r.sim.Engine().RunUntil(r.horizon * (1 + i))
		if r.sim.Engine().Stopped() {
			return ErrInterrupted
		}
		if err = r.sim.VerifyDrained(); err == nil {
			return nil
		}
	}
	return err
}

// runOnce assembles and runs one simulation: the given seed and engine
// worker count, the materialized fault plan, the fidelity overrides
// (passed through config.ApplyFidelity), and — when winStart > 0 — a
// recovery-window measurement hook counting goodput and latencies of
// requests finishing at or after winStart.
func (h *Harness) runOnce(docs *config.BaseDocs, seed uint64, workers int, faultsJSON []byte, winStart des.Time, fidelity string, sampleRate float64) (*runResult, error) {
	if h.opts.Interrupted() {
		return nil, ErrInterrupted
	}
	seeded, err := docs.WithSeed(seed)
	if err != nil {
		return nil, err
	}
	seeded, err = seeded.WithWorkers(workers)
	if err != nil {
		return nil, err
	}
	setup, err := seeded.Assemble(faultsJSON)
	if err != nil {
		return nil, err
	}
	if err := config.ApplyFidelity(setup.Sim, fidelity, sampleRate); err != nil {
		return nil, err
	}
	res := &runResult{sim: setup.Sim, horizon: setup.Warmup + setup.Duration}
	if h.control != nil {
		plane, err := config.ApplyControl(setup.Sim, h.control)
		if err != nil {
			return nil, err
		}
		res.plane = plane
	}
	if winStart > 0 {
		win := &windowStats{hist: stats.NewLatencyHist()}
		res.window = win
		horizon := res.horizon
		setup.Sim.OnRequestDone = func(now des.Time, req *job.Request) {
			// The window closes at the horizon: completions straggling in
			// during the post-run drain don't count (the baseline never
			// drains, so counting them would skew the comparison).
			if now >= winStart && now <= horizon && goodCompletion(req) {
				win.good++
				win.hist.Record(req.Latency())
			}
		}
	}
	rep, err := setup.Run()
	if err != nil {
		return nil, err
	}
	if setup.Sim.Engine().Stopped() {
		return nil, ErrInterrupted
	}
	res.report = rep
	res.fingerprint = validate.Fingerprint(rep)
	return res, nil
}

// baseline measures the recovery window of a no-fault run with the same
// seed. Shrink probes re-verify many sub-scenarios of one trial, so the
// (seed, window) pair memoizes across them.
func (h *Harness) baseline(seed uint64, winStart des.Time) (*windowStats, error) {
	key := [2]uint64{seed, uint64(winStart)}
	if ws, ok := h.baselineCache[key]; ok {
		return ws, nil
	}
	faultsJSON, err := encodeFaults(h.cleanFaults())
	if err != nil {
		return nil, err
	}
	run, err := h.runOnce(h.docs, seed, 1, faultsJSON, winStart, h.opts.Fidelity, h.opts.SampleRate)
	if err != nil {
		return nil, err
	}
	h.baselineCache[key] = run.window
	return run.window, nil
}

// checkRecovery compares the faulted run's recovery window against the
// baseline's: goodput must stay above GoodputFrac of baseline, and p99
// must stay under baseline·P99Factor + P99SlackMs.
func (h *Harness) checkRecovery(win, base *windowStats) *Violation {
	if base == nil || base.good < minWindowSamples {
		return nil // baseline too quiet to judge against
	}
	if float64(win.good) < h.opts.GoodputFrac*float64(base.good) {
		return &Violation{
			ID: "recovery-goodput",
			Detail: fmt.Sprintf("post-heal goodput %d is below %.0f%% of the no-fault baseline's %d",
				win.good, 100*h.opts.GoodputFrac, base.good),
		}
	}
	if win.good >= minWindowSamples {
		p99 := win.hist.P99()
		limit := des.Time(float64(base.hist.P99())*h.opts.P99Factor) + des.FromSeconds(h.opts.P99SlackMs/1000)
		if p99 > limit {
			return &Violation{
				ID: "recovery-p99",
				Detail: fmt.Sprintf("post-heal p99 %v exceeds %v (baseline %v × %.1f + %.0fms slack)",
					p99, limit, base.hist.P99(), h.opts.P99Factor, h.opts.P99SlackMs),
			}
		}
	}
	return nil
}

// recoveryWindowStart finds when the materialized schedule's last fault
// heals and places the measurement window 10% of a horizon after it.
// Zero means no recovery check: nothing to heal, something never heals,
// or the window would start too close to the end of the run to measure.
func (h *Harness) recoveryWindowStart(ff *config.FaultsFile) des.Time {
	lastHealS, ok := h.healAnalysis(ff)
	if !ok {
		return 0
	}
	winStartS := lastHealS + 0.1*h.horizonS
	if winStartS > 0.85*h.horizonS {
		return 0
	}
	return des.FromSeconds(winStartS)
}

// healAnalysis scans a fault plan and reports when its last fault heals.
// ok is false when the plan has no faults at all or contains one that
// never heals (an unmatched crash, or a window with until_s 0).
func (h *Harness) healAnalysis(ff *config.FaultsFile) (lastHealS float64, ok bool) {
	any := false
	heal := func(s float64) {
		any = true
		lastHealS = math.Max(lastHealS, s)
	}
	// Pair crashes with recoveries per target; an unmatched crash means
	// the plan never fully heals.
	type pending struct{ crashes, recovers int }
	machines := map[string]*pending{}
	instances := map[string]*pending{}
	domains := map[string]*pending{}
	get := func(m map[string]*pending, k string) *pending {
		if m[k] == nil {
			m[k] = &pending{}
		}
		return m[k]
	}
	for _, ev := range ff.Events {
		switch ev.Kind {
		case "crash_machine":
			get(machines, ev.Machine).crashes++
		case "recover_machine":
			get(machines, ev.Machine).recovers++
			heal(ev.AtS)
		case "crash_domain":
			get(domains, ev.Domain).crashes++
		case "recover_domain":
			get(domains, ev.Domain).recovers++
			// The burst staggers member recoveries after at_s.
			heal(ev.AtS + ev.StaggerMs*float64(h.world.domainSize[ev.Domain])/1000)
		case "kill_instance", "restart_instance":
			key := ev.Service
			if ev.Instance != nil {
				key = fmt.Sprintf("%s#%d", ev.Service, *ev.Instance)
			}
			if ev.Kind == "kill_instance" {
				get(instances, key).crashes++
			} else {
				get(instances, key).recovers++
				heal(ev.AtS)
			}
		default:
			// Windowed kinds (degrade_freq, edge_latency, load_step)
			// heal at until_s; 0 means permanent.
			if ev.UntilS <= 0 {
				return 0, false
			}
			any = true
			heal(ev.UntilS)
		}
	}
	for _, m := range []map[string]*pending{machines, instances, domains} {
		for _, p := range m {
			if p.crashes > p.recovers {
				return 0, false
			}
		}
	}
	if ff.Network != nil {
		for _, p := range ff.Network.Partitions {
			if p.UntilS <= 0 {
				return 0, false
			}
			heal(p.UntilS)
		}
		for _, l := range ff.Network.Links {
			if l.UntilS <= 0 {
				return 0, false
			}
			heal(l.UntilS)
		}
	}
	if !any {
		return 0, false
	}
	return lastHealS, true
}
