package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"uqsim/internal/config"
)

// Meta is the corpus entry's meta.json: everything a replay needs to
// reproduce and re-judge the finding. The fingerprint pins the exact
// simulation the original run observed — a replay whose fingerprint
// differs has diverged, even if it violates the same invariant.
type Meta struct {
	Seed        uint64   `json:"seed"`
	Trial       int      `json:"trial"`
	Violation   string   `json:"violation"`
	Detail      string   `json:"detail"`
	Events      int      `json:"events"`
	Labels      []string `json:"labels,omitempty"`
	Fingerprint string   `json:"fingerprint"`
}

// Entry is one corpus artifact in portable form: the entry directory's
// name plus the exact bytes of its two files. Findings cross process
// boundaries as Entries — a farm worker returns them over its result
// pipe and the dispatcher archives them — so the merged corpus of a
// distributed search is byte-identical to a serial one.
type Entry struct {
	Name   string          `json:"name"`
	Meta   json.RawMessage `json:"meta"`
	Faults json.RawMessage `json:"faults"`
}

// findingEntry renders a shrunk finding as its corpus artifact.
func findingEntry(f *Finding, faultsJSON []byte) (*Entry, error) {
	meta := Meta{
		Seed:        f.Seed,
		Trial:       f.Trial,
		Violation:   f.Violation,
		Detail:      f.Detail,
		Events:      f.Events,
		Labels:      f.Scenario.Labels(),
		Fingerprint: f.Fingerprint,
	}
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: encoding meta.json: %w", err)
	}
	return &Entry{
		Name:   fmt.Sprintf("trial%04d-%s", f.Trial, f.Violation),
		Meta:   append(data, '\n'),
		Faults: faultsJSON,
	}, nil
}

// ArchiveEntry writes one entry as corpusDir/<name>/ holding faults.json
// (the materialized minimal schedule, merged with the config's base
// policies) and meta.json. Both files land atomically and meta.json is
// written last, so an interrupted flush can never leave an entry that
// Entries or Replay would pick up half-written. Both documents are
// re-indented canonically: an Entry that crossed a process boundary (a
// farm worker's result pipe, the spool journal) carries RawMessage bytes
// reformatted by the enclosing encoders, and the corpus must come out
// byte-identical either way.
func ArchiveEntry(corpusDir string, e *Entry) (string, error) {
	faults, err := canonicalJSON(e.Faults)
	if err != nil {
		return "", fmt.Errorf("chaos: corpus entry %s faults.json: %w", e.Name, err)
	}
	meta, err := canonicalJSON(e.Meta)
	if err != nil {
		return "", fmt.Errorf("chaos: corpus entry %s meta.json: %w", e.Name, err)
	}
	dir := filepath.Join(corpusDir, e.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("chaos: creating corpus entry: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, "faults.json"), faults); err != nil {
		return "", err
	}
	if err := writeAtomic(filepath.Join(dir, "meta.json"), append(meta, '\n')); err != nil {
		return "", err
	}
	return dir, nil
}

// canonicalJSON reformats a JSON document into the corpus's canonical
// two-space indentation, discarding whatever whitespace it arrived with.
func canonicalJSON(raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(raw), "", "  "); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeAtomic writes via a same-directory temp file and rename, so a
// signal mid-write leaves either the old content or the new — never a
// truncated file.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("chaos: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("chaos: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("chaos: %w", err)
	}
	return nil
}

// Entries lists the complete corpus entries under dir, sorted by name.
// Directories without a meta.json (an interrupted flush) are skipped.
func Entries(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	var out []string
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		entry := filepath.Join(dir, de.Name())
		if _, err := os.Stat(filepath.Join(entry, "meta.json")); err == nil {
			out = append(out, entry)
		}
	}
	sort.Strings(out)
	return out, nil
}

// ReplayResult compares a corpus entry's recorded finding against a fresh
// run of its schedule.
type ReplayResult struct {
	Meta Meta
	// Violation and Fingerprint are the fresh run's observations.
	Violation   *Violation
	Fingerprint string
}

// Matches reports whether the replay reproduced the recorded finding
// exactly: same violation ID and bit-identical fingerprint.
func (r *ReplayResult) Matches() bool {
	return r.Violation != nil && r.Violation.ID == r.Meta.Violation &&
		r.Fingerprint == r.Meta.Fingerprint
}

// Replay re-runs a corpus entry's faults.json under its recorded seed
// against the given config directory and re-judges the invariants. The
// committed corpus is replayed in CI, so every archived chaos finding
// stays a live regression test.
func Replay(configDir, entryDir string) (*ReplayResult, error) {
	return ReplayWith(configDir, entryDir, "", 0)
}

// ReplayWith is Replay at an explicit fidelity (see config.ApplyFidelity):
// "hybrid" with sample rate 1.0 must still Match the recorded full-DES
// finding bit-for-bit (the inertness contract), while sampled rates
// re-judge the invariants — conservation in particular — on the hybrid
// tier's own books and are not expected to reproduce the fingerprint.
func ReplayWith(configDir, entryDir, fidelity string, sampleRate float64) (*ReplayResult, error) {
	metaData, err := os.ReadFile(filepath.Join(entryDir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(metaData, &meta); err != nil {
		return nil, fmt.Errorf("chaos: %s/meta.json: %w", entryDir, err)
	}
	faultsJSON, err := os.ReadFile(filepath.Join(entryDir, "faults.json"))
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	var ff config.FaultsFile
	if err := json.Unmarshal(faultsJSON, &ff); err != nil {
		return nil, fmt.Errorf("chaos: %s/faults.json: %w", entryDir, err)
	}
	h, err := NewHarness(Options{ConfigDir: configDir, Fidelity: fidelity, SampleRate: sampleRate})
	if err != nil {
		return nil, err
	}
	v, fp, err := h.verifyFaults(meta.Seed, faultsJSON, &ff)
	if err != nil {
		return nil, err
	}
	return &ReplayResult{Meta: meta, Violation: v, Fingerprint: fp}, nil
}

// encodeFaults marshals a fault plan the same way Materialize does.
func encodeFaults(ff *config.FaultsFile) ([]byte, error) {
	data, err := json.MarshalIndent(ff, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: encoding faults.json: %w", err)
	}
	return data, nil
}
