package chaos

import (
	"encoding/json"
	"fmt"

	"uqsim/internal/config"
	"uqsim/internal/rng"
)

// Action is the generator's atomic unit: one fault plus everything that
// heals it (a crash and its recovery, a windowed degradation and its
// until_s). Shrinking removes whole actions, so a shrunken scenario never
// contains an orphaned heal or an unhealed crash the original would have
// recovered.
type Action struct {
	// Label names the action for logs ("partition m0|m1", "crash m2").
	Label string `json:"label"`
	// Events, Partitions, and Links are this action's contributions to
	// the materialized FaultsFile.
	Events     []config.FaultEventSpec `json:"events,omitempty"`
	Partitions []config.PartitionSpec  `json:"partitions,omitempty"`
	Links      []config.LinkSpec       `json:"links,omitempty"`
}

// EventCount counts the action's individual fault events.
func (a *Action) EventCount() int {
	return len(a.Events) + len(a.Partitions) + len(a.Links)
}

// Scenario is one candidate fault schedule plus the simulation seed it
// runs under. The pair fully determines the run: replaying (seed, actions)
// reproduces the exact same report fingerprint.
type Scenario struct {
	Seed    uint64   `json:"seed"`
	Actions []Action `json:"actions"`
}

// EventCount counts fault events across all actions — the size metric the
// shrinker minimizes and the acceptance threshold (≤ 8) is measured in.
func (sc *Scenario) EventCount() int {
	n := 0
	for i := range sc.Actions {
		n += sc.Actions[i].EventCount()
	}
	return n
}

// Labels lists the actions' labels in schedule order.
func (sc *Scenario) Labels() []string {
	out := make([]string, len(sc.Actions))
	for i := range sc.Actions {
		out[i] = sc.Actions[i].Label
	}
	return out
}

// Generate draws one random scenario from the world model. All faults are
// self-healing and land inside [0.15, 0.65]·horizon, leaving the last
// third of the run as the recovery window the invariants measure.
func (h *Harness) Generate(src *rng.Source, simSeed uint64) Scenario {
	sc := Scenario{Seed: simSeed}
	n := 1 + src.IntN(h.opts.MaxActions)
	for i := 0; i < n; i++ {
		if a, ok := h.randomAction(src); ok {
			sc.Actions = append(sc.Actions, a)
		}
	}
	return sc
}

// window draws a fault start and end inside the injection window:
// start ∈ [0.15, 0.50]·horizon, duration ∈ [0.05, 0.15]·horizon, so every
// fault heals by 0.65·horizon.
func (h *Harness) window(src *rng.Source) (startS, endS float64) {
	startS = h.horizonS * (0.15 + 0.35*src.Float64())
	endS = startS + h.horizonS*(0.05+0.10*src.Float64())
	return startS, endS
}

// randomAction draws one action kind uniformly from the kinds this world
// supports. Kinds needing absent config (no domains, no DVFS range, a
// single machine) are simply not in the deck.
func (h *Harness) randomAction(src *rng.Source) (Action, bool) {
	type builder func(*rng.Source) Action
	var deck []builder
	if len(h.world.machines) > 0 {
		deck = append(deck, h.crashMachine)
	}
	if len(h.world.services) > 0 {
		deck = append(deck, h.killInstance)
	}
	if len(h.world.freqMachines) > 0 {
		deck = append(deck, h.degradeFreq)
	}
	if len(h.world.services) > 0 {
		deck = append(deck, h.edgeLatency)
	}
	if len(h.world.domains) > 0 {
		deck = append(deck, h.domainBurst)
	}
	if len(h.world.machines) >= 2 {
		deck = append(deck, h.partition, h.grayLink)
	}
	deck = append(deck, h.loadStep)
	if len(deck) == 0 {
		return Action{}, false
	}
	return deck[src.IntN(len(deck))](src), true
}

func (h *Harness) crashMachine(src *rng.Source) Action {
	m := h.world.machines[src.IntN(len(h.world.machines))]
	startS, endS := h.window(src)
	return Action{
		Label: "crash " + m,
		Events: []config.FaultEventSpec{
			{AtS: startS, Kind: "crash_machine", Machine: m},
			{AtS: endS, Kind: "recover_machine", Machine: m},
		},
	}
}

func (h *Harness) killInstance(src *rng.Source) Action {
	svc := h.world.services[src.IntN(len(h.world.services))]
	idx := src.IntN(svc.instances)
	startS, endS := h.window(src)
	return Action{
		Label: fmt.Sprintf("kill %s#%d", svc.name, idx),
		Events: []config.FaultEventSpec{
			{AtS: startS, Kind: "kill_instance", Service: svc.name, Instance: &idx},
			{AtS: endS, Kind: "restart_instance", Service: svc.name, Instance: ptr(idx)},
		},
	}
}

func (h *Harness) degradeFreq(src *rng.Source) Action {
	fm := h.world.freqMachines[src.IntN(len(h.world.freqMachines))]
	// Bottom quartile of the DVFS range: a degradation worth noticing.
	mhz := fm.min + 0.25*src.Float64()*(fm.max-fm.min)
	startS, endS := h.window(src)
	return Action{
		Label: fmt.Sprintf("degrade %s to %.0fMHz", fm.name, mhz),
		Events: []config.FaultEventSpec{
			{AtS: startS, Kind: "degrade_freq", Machine: fm.name, FreqMHz: mhz, UntilS: endS},
		},
	}
}

func (h *Harness) edgeLatency(src *rng.Source) Action {
	svc := h.world.services[src.IntN(len(h.world.services))]
	extra := 1 + 9*src.Float64() // 1–10ms on every RPC into the service
	startS, endS := h.window(src)
	return Action{
		Label: fmt.Sprintf("edge latency %s +%.1fms", svc.name, extra),
		Events: []config.FaultEventSpec{
			{AtS: startS, Kind: "edge_latency", Service: svc.name, ExtraMs: extra, UntilS: endS},
		},
	}
}

func (h *Harness) domainBurst(src *rng.Source) Action {
	d := h.world.domains[src.IntN(len(h.world.domains))]
	stagger := 2 * src.Float64() // 0–2ms between member crashes
	startS, endS := h.window(src)
	return Action{
		Label: "burst " + d,
		Events: []config.FaultEventSpec{
			{AtS: startS, Kind: "crash_domain", Domain: d, StaggerMs: stagger},
			{AtS: endS, Kind: "recover_domain", Domain: d, StaggerMs: stagger},
		},
	}
}

func (h *Harness) partition(src *rng.Source) Action {
	ms := append([]string(nil), h.world.machines...)
	src.Shuffle(len(ms), func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
	cut := 1 + src.IntN(len(ms)-1)
	oneWay := src.IntN(4) == 0
	startS, endS := h.window(src)
	label := "partition"
	if oneWay {
		label = "one-way partition"
	}
	return Action{
		Label: fmt.Sprintf("%s %v|%v", label, ms[:cut], ms[cut:]),
		Partitions: []config.PartitionSpec{
			{AtS: startS, UntilS: endS, GroupA: ms[:cut], GroupB: ms[cut:], OneWay: oneWay},
		},
	}
}

func (h *Harness) grayLink(src *rng.Source) Action {
	i := src.IntN(len(h.world.machines))
	j := src.IntN(len(h.world.machines) - 1)
	if j >= i {
		j++
	}
	drop := 0.1 + 0.8*src.Float64()
	dup := 0.0
	if src.IntN(4) == 0 {
		dup = 0.2 * src.Float64()
	}
	startS, endS := h.window(src)
	return Action{
		Label: fmt.Sprintf("gray link %s→%s drop=%.2f", h.world.machines[i], h.world.machines[j], drop),
		Links: []config.LinkSpec{
			{AtS: startS, UntilS: endS, Src: h.world.machines[i], Dst: h.world.machines[j], Drop: drop, Dup: dup},
		},
	}
}

func (h *Harness) loadStep(src *rng.Source) Action {
	factor := 1.5 + 2.5*src.Float64()
	startS, endS := h.window(src)
	return Action{
		Label: fmt.Sprintf("load ×%.1f", factor),
		Events: []config.FaultEventSpec{
			{AtS: startS, Kind: "load_step", Factor: factor, UntilS: endS},
		},
	}
}

func ptr(v int) *int { return &v }

// Materialize merges the scenario's actions into the config directory's
// base faults.json (policies, shedding, and queues are preserved; the
// scenario's events are appended to any baseline events) and returns the
// encoded document plus the parsed form.
func (h *Harness) Materialize(sc Scenario) ([]byte, *config.FaultsFile, error) {
	ff := h.faultsTemplate()
	for i := range sc.Actions {
		a := &sc.Actions[i]
		ff.Events = append(ff.Events, a.Events...)
		if len(a.Partitions) > 0 || len(a.Links) > 0 {
			if ff.Network == nil {
				ff.Network = &config.NetFaultSpec{}
			}
			ff.Network.Partitions = append(ff.Network.Partitions, a.Partitions...)
			ff.Network.Links = append(ff.Network.Links, a.Links...)
		}
	}
	data, err := json.MarshalIndent(ff, "", "  ")
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: encoding faults.json: %w", err)
	}
	return data, ff, nil
}

// faultsTemplate deep-copies the base faults file so scenario appends
// never alias the harness's copy.
func (h *Harness) faultsTemplate() *config.FaultsFile {
	ff := &config.FaultsFile{}
	if h.baseFaults != nil {
		ff.Policies = append([]config.EdgePolicySpec(nil), h.baseFaults.Policies...)
		ff.Shedding = append([]config.ShedSpec(nil), h.baseFaults.Shedding...)
		ff.Queues = append([]config.QueueSpec(nil), h.baseFaults.Queues...)
		ff.Events = append([]config.FaultEventSpec(nil), h.baseFaults.Events...)
		if h.baseFaults.Network != nil {
			ff.Network = &config.NetFaultSpec{
				Partitions: append([]config.PartitionSpec(nil), h.baseFaults.Network.Partitions...),
				Links:      append([]config.LinkSpec(nil), h.baseFaults.Network.Links...),
			}
		}
	}
	return ff
}

// cleanFaults is the no-fault variant of the base file — policies kept,
// events stripped — the recovery baseline runs under.
func (h *Harness) cleanFaults() *config.FaultsFile {
	ff := h.faultsTemplate()
	ff.Events = nil
	ff.Network = nil
	return ff
}
