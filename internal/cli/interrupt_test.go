package cli_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"uqsim/internal/chaos"
	"uqsim/internal/config"
)

// These tests exercise the full binaries: a SIGINT landing mid-sweep must
// terminate the process nonzero while leaving only complete, parseable
// artifacts behind. They build the real commands and signal them exactly
// like an operator's Ctrl-C.

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// syncBuffer is a buffer safe to poll while os/exec's copier goroutine
// is still writing the child's output into it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// interruptAndWait sends SIGINT and returns the exit code, killing the
// process outright if it ignores the signal.
func interruptAndWait(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			return exit.ExitCode()
		}
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
		return 0
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		<-done
		t.Fatal("process did not exit within 60s of SIGINT")
		return -1
	}
}

// TestChaosInterruptFlushesPartialCorpus: SIGINT mid-search must exit
// nonzero and leave a corpus in which every entry is complete — meta.json
// parses, records a violation, and sits beside a loadable faults.json.
func TestChaosInterruptFlushesPartialCorpus(t *testing.T) {
	bin := buildBinary(t, "cmd/uqsim-chaos")
	corpusDir := filepath.Join(t.TempDir(), "corpus")

	cmd := exec.Command(bin,
		"-config", "configs/metastable",
		"-trials", "9999", "-seed", "1",
		"-corpus", corpusDir, "-q")
	cmd.Dir = repoRoot(t)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Let the search archive at least one finding, then interrupt it with
	// thousands of trials still pending.
	waitFor(t, 2*time.Minute, "a complete corpus entry", func() bool {
		entries, err := chaos.Entries(corpusDir)
		return err == nil && len(entries) > 0
	})
	code := interruptAndWait(t, cmd)
	if code == 0 {
		t.Fatalf("interrupted search exited 0; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "PARTIAL") && !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("no interruption diagnostic in output:\n%s", out.String())
	}

	entries, err := chaos.Entries(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries survived the interrupt")
	}
	for _, dir := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		var meta chaos.Meta
		if err := json.Unmarshal(raw, &meta); err != nil {
			t.Fatalf("%s: meta.json does not parse: %v", dir, err)
		}
		if meta.Violation == "" || meta.Fingerprint == "" {
			t.Fatalf("%s: incomplete meta: %+v", dir, meta)
		}
		raw, err = os.ReadFile(filepath.Join(dir, "faults.json"))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		var ff config.FaultsFile
		if err := json.Unmarshal(raw, &ff); err != nil {
			t.Fatalf("%s: faults.json does not parse: %v", dir, err)
		}
	}
}

// TestExperimentsInterruptFlushesPartialCSV: SIGINT mid-sweep must exit
// nonzero; every CSV already in the output directory (including the
// interrupted experiment's atomically written partial table) parses.
func TestExperimentsInterruptFlushesPartialCSV(t *testing.T) {
	bin := buildBinary(t, "cmd/uqsim-experiments")
	outDir := filepath.Join(t.TempDir(), "results")

	// chaos finishes in a few seconds; the rest keep the sweep busy long
	// enough for the signal to land mid-run.
	cmd := exec.Command(bin, "-csv", "-out", outDir,
		"chaos", "scalability", "regionloss", "metastable")
	cmd.Dir = repoRoot(t)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Minute, "the first experiment CSV", func() bool {
		files, _ := filepath.Glob(filepath.Join(outDir, "*.csv"))
		return len(files) > 0
	})
	code := interruptAndWait(t, cmd)
	if code == 0 {
		t.Fatalf("interrupted sweep exited 0; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("no interruption diagnostic in output:\n%s", out.String())
	}

	files, err := filepath.Glob(filepath.Join(outDir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no CSV files survived the interrupt")
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := csv.NewReader(bytes.NewReader(raw)).ReadAll()
		if err != nil {
			t.Fatalf("%s does not parse as CSV: %v", f, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s has no data rows", f)
		}
	}
}

// TestSweepInterruptPrintsCompleteRows: SIGINT mid-sweep must exit
// nonzero with a PARTIAL diagnostic, and the table printed must contain
// only complete rows — the header plus one full row per finished point.
func TestSweepInterruptPrintsCompleteRows(t *testing.T) {
	bin := buildBinary(t, "cmd/uqsim-sweep")

	// A wide grid keeps the sweep busy; -progress reports each finished
	// point on stderr so the test can interrupt after the first one.
	cmd := exec.Command(bin,
		"-config", "configs/twotier",
		"-from", "15000", "-to", "80000", "-step", "1000",
		"-csv", "-progress")
	cmd.Dir = repoRoot(t)
	var stdout bytes.Buffer
	var stderr syncBuffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Minute, "the first completed sweep point", func() bool {
		return strings.Contains(stderr.String(), "point 1/")
	})
	code := interruptAndWait(t, cmd)
	if code != 1 {
		t.Fatalf("interrupted sweep exited %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "PARTIAL") {
		t.Fatalf("no PARTIAL diagnostic:\n%s", stderr.String())
	}

	rows, err := csv.NewReader(bytes.NewReader(stdout.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("partial sweep output does not parse as CSV: %v\n%s", err, stdout.String())
	}
	if len(rows) < 2 {
		t.Fatalf("no complete data rows survived the interrupt:\n%s", stdout.String())
	}
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			t.Fatalf("row %d is ragged: %v", i, row)
		}
	}
}

// TestTraceInterruptReportsPartialRun: SIGINT mid-trace must stop the
// simulation cleanly, still print the report header and collected
// traces, and exit 1 with a PARTIAL diagnostic.
func TestTraceInterruptReportsPartialRun(t *testing.T) {
	bin := buildBinary(t, "cmd/uqsim-trace")

	// An hour of virtual time takes far longer than the test to simulate,
	// so the signal always lands mid-run.
	cmd := exec.Command(bin,
		"-config", "configs/twotier",
		"-duration", "1h", "-sample", "64")
	cmd.Dir = repoRoot(t)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Give the run time to get well into the simulation before signaling.
	time.Sleep(2 * time.Second)
	code := interruptAndWait(t, cmd)
	if code != 1 {
		t.Fatalf("interrupted trace exited %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "PARTIAL") {
		t.Fatalf("no PARTIAL diagnostic:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "completions=") {
		t.Fatalf("truncated run did not report its partial results:\n%s", stdout.String())
	}
}
