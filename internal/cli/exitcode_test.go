package cli_test

import (
	"os/exec"
	"path/filepath"
	"testing"

	"uqsim/internal/cli"
	"uqsim/internal/farm"
)

// TestExitCodeConvention pins the uniform exit-code contract across every
// binary: 0 ok, 1 interrupted/failed-partial, 2 usage, 3 findings.
// Scripts and CI branch on these; a binary drifting from the convention
// is a regression even if its output is fine.
func TestExitCodeConvention(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binaries")
	}
	root := repoRoot(t)
	bins := map[string]string{}
	for _, pkg := range []string{
		"cmd/uqsim", "cmd/uqsim-sweep", "cmd/uqsim-trace",
		"cmd/uqsim-chaos", "cmd/uqsim-experiments", "cmd/uqsim-farm",
	} {
		bins[filepath.Base(pkg)] = buildBinary(t, pkg)
	}

	// Spool fixtures for the farm audit cases, journaled without running
	// any simulation: a complete campaign, an incomplete one, and one
	// with an orphaned result (exactly-once accounting violated).
	row := []string{"1", "2", "3", "4", "5", "6", "7"}
	makeSpool := func(name string, commits int, orphan bool) string {
		dir := filepath.Join(t.TempDir(), name)
		c, err := farm.NewSweepCampaign(filepath.Join(root, "configs", "twotier"), 1000, 3000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := farm.OpenSpool(dir, c, false)
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := c.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs[:commits] {
			if _, err := sp.CommitResult(&farm.Result{Hash: j.Hash(), Job: j, Row: row}); err != nil {
				t.Fatal(err)
			}
		}
		if orphan {
			stray := farm.JobSpec{Kind: farm.KindSweep, ConfigHash: c.ConfigHash, Index: 99, QPS: 99000}
			if _, err := sp.CommitResult(&farm.Result{Hash: stray.Hash(), Job: stray, Row: row}); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}
	completeSpool := makeSpool("complete", 3, false)
	partialSpool := makeSpool("partial", 1, false)
	dirtySpool := makeSpool("dirty", 3, true)

	cases := []struct {
		name string
		bin  string
		args []string
		env  []string // KEY=VALUE appended to the environment
		want int
	}{
		// ---- 2: usage errors; nothing runs ----
		{"uqsim/no-config", "uqsim", nil, nil, cli.ExitUsage},
		{"sweep/no-config", "uqsim-sweep", nil, nil, cli.ExitUsage},
		{"sweep/bad-grid", "uqsim-sweep", []string{"-config", "configs/twotier", "-from", "2000", "-to", "1000"}, nil, cli.ExitUsage},
		{"trace/no-config", "uqsim-trace", nil, nil, cli.ExitUsage},
		{"chaos/no-config", "uqsim-chaos", nil, nil, cli.ExitUsage},
		{"experiments/no-args", "uqsim-experiments", nil, nil, cli.ExitUsage},
		{"farm/no-config", "uqsim-farm", nil, nil, cli.ExitUsage},
		{"farm/bad-kind", "uqsim-farm", []string{"-config", "configs/twotier", "-spool", filepath.Join(t.TempDir(), "s"), "-kind", "nope"}, nil, cli.ExitUsage},
		{"farm/audit-no-spool", "uqsim-farm", []string{"-audit"}, nil, cli.ExitUsage},
		{"farm/replay-no-config", "uqsim-farm", []string{"-replay", "x.json"}, nil, cli.ExitUsage},

		// ---- 0: completed runs ----
		{"uqsim/ok", "uqsim", []string{"-config", "configs/twotier", "-warmup", "10ms", "-duration", "50ms"}, nil, cli.ExitOK},
		{"sweep/ok", "uqsim-sweep", []string{"-config", "configs/twotier", "-from", "20000", "-to", "20000", "-step", "1000", "-csv"}, nil, cli.ExitOK},
		{"trace/ok", "uqsim-trace", []string{"-config", "configs/twotier", "-duration", "100ms"}, nil, cli.ExitOK},
		{"experiments/list", "uqsim-experiments", []string{"-list"}, nil, cli.ExitOK},
		{"farm/audit-complete", "uqsim-farm", []string{"-audit", "-spool", completeSpool}, nil, cli.ExitOK},

		// ---- 1: interrupted or incomplete; artifacts partial ----
		{"sweep/max-wall", "uqsim-sweep", []string{"-config", "configs/twotier", "-from", "15000", "-to", "80000", "-step", "1000", "-max-wall", "500ms"}, nil, cli.ExitPartial},
		{"farm/audit-incomplete", "uqsim-farm", []string{"-audit", "-spool", partialSpool}, nil, cli.ExitPartial},

		// ---- 3: the run succeeded and surfaced findings ----
		{"farm/audit-orphan", "uqsim-farm", []string{"-audit", "-spool", dirtySpool}, nil, cli.ExitFindings},
		{"farm/poison-quarantine", "uqsim-farm", []string{
			"-config", "configs/twotier",
			"-from", "20000", "-to", "20000", "-step", "1000",
			"-workers", "1", "-max-failures", "1", "-q",
			"-spool", filepath.Join(t.TempDir(), "poison"),
		}, []string{farm.EnvTestCrash + "=@99"}, cli.ExitFindings},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bins[tc.bin], tc.args...)
			cmd.Dir = root
			if tc.env != nil {
				cmd.Env = append(cmd.Environ(), tc.env...)
			}
			out, err := cmd.CombinedOutput()
			code := 0
			if exit, ok := err.(*exec.ExitError); ok {
				code = exit.ExitCode()
			} else if err != nil {
				t.Fatalf("run: %v", err)
			}
			if code != tc.want {
				t.Fatalf("%s %v exited %d, want %d\n%s", tc.bin, tc.args, code, tc.want, out)
			}
		})
	}
}
