package cli

// Exit codes shared by every cmd/ binary. The convention is uniform so
// scripts and CI can branch on outcomes without knowing which tool ran:
//
//	0  ExitOK        the run completed; artifacts are complete
//	1  ExitPartial   a runtime error or an interrupt (signal, -max-wall)
//	                 stopped the run; artifacts already flushed are
//	                 complete files, but the set is partial
//	2  ExitUsage     bad flags or arguments; nothing ran
//	3  ExitFindings  the run itself succeeded and surfaced findings that
//	                 deserve attention: chaos violations, a replay
//	                 mismatch, quarantined farm jobs
//
// Interruption always wins over findings: a partial search that found
// violations still exits 1, because its artifact set is incomplete.
const (
	ExitOK       = 0
	ExitPartial  = 1
	ExitUsage    = 2
	ExitFindings = 3
)
