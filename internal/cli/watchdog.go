// Package cli holds shared plumbing for the command-line binaries:
// graceful shutdown on SIGINT/SIGTERM and a wall-clock watchdog, both of
// which stop the currently running simulation engine so the caller can
// flush partial results and exit nonzero instead of dying mid-write.
package cli

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"uqsim/internal/des"
	"uqsim/internal/sim"
)

// Watchdog tracks the engine of whichever simulation is currently running
// and stops it when a termination signal arrives or the wall-clock budget
// runs out. A simulation stopped mid-run returns a partial report (see
// sim.Run); simulations created after the trigger are stopped immediately
// so a multi-run experiment sweeps through its remaining cells without
// doing work.
type Watchdog struct {
	mu          sync.Mutex
	current     des.Runner
	interrupted atomic.Bool
	reason      atomic.Value // string
}

// StartWatchdog installs the signal handler and, when maxWall > 0, arms
// the wall-clock limit. It registers itself as the sim.OnNew observer, so
// it must be started before any simulation is built.
func StartWatchdog(maxWall time.Duration) *Watchdog {
	w := &Watchdog{}
	sim.OnNew = w.observe

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		w.trigger(fmt.Sprintf("received %v", s))
		// A second signal means "now": skip the flush and die.
		<-sigc
		os.Exit(1)
	}()
	if maxWall > 0 {
		time.AfterFunc(maxWall, func() {
			w.trigger(fmt.Sprintf("wall-clock limit %v exceeded", maxWall))
		})
	}
	return w
}

// observe tracks s as the current simulation. When the watchdog already
// fired, the new engine is stopped before it runs a single event.
func (w *Watchdog) observe(s *sim.Sim) {
	w.mu.Lock()
	w.current = s.Engine()
	stopNow := w.interrupted.Load()
	w.mu.Unlock()
	if stopNow {
		s.Engine().Stop()
	}
}

// trigger marks the watchdog fired and stops the engine that is (or was
// last) running. Engine.Stop is atomic, so calling it from this goroutine
// while the run loop spins on another is safe.
func (w *Watchdog) trigger(reason string) {
	w.reason.Store(reason)
	w.mu.Lock()
	eng := w.current
	w.interrupted.Store(true)
	w.mu.Unlock()
	if eng != nil {
		eng.Stop()
	}
}

// Interrupted reports whether a signal or the wall-clock limit fired.
func (w *Watchdog) Interrupted() bool { return w.interrupted.Load() }

// Reason describes what fired, for the exit diagnostic.
func (w *Watchdog) Reason() string {
	if r, ok := w.reason.Load().(string); ok {
		return r
	}
	return ""
}
