package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"uqsim/internal/chaos"
	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/hybrid"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/validate"
	"uqsim/internal/workload"
)

// HybridFault validates the fault-aware fluid tier end to end:
//
//   - Accuracy under faults: a two-tier deployment at backend rho 0.8 runs
//     a partition + DVFS-degrade schedule at full DES fidelity and again
//     with a 25% foreground sample. Sampled p50/p99 must land within
//     sampling-aware confidence bounds of the full run both during the
//     fault window and after every fault heals.
//   - Equivalence: sample rate 1.0 with the same fault schedule must
//     produce a bit-identical fingerprint to a run with no hybrid engine.
//   - Attribution: a schedule exercising the full fault vocabulary
//     (DVFS saturation, partition, gray link) must book every lost
//     background request under its causing fault, with the per-cause sum
//     matching shed+unreachable exactly.
//   - Chaos coverage: a hybrid-mode chaos search over configs/robust
//     (generated fault schedules, full invariant battery including the
//     cross-fidelity check) must complete with zero violations.
//
// Every cell asserts foreground conservation plus the background identity
// arrivals == completions + shed + unreachable (leaked must be 0).
func HybridFault(o Opts) (*Table, error) {
	t := NewTable("Hybrid fidelity under faults — accuracy, attribution, chaos coverage",
		"phase", "fidelity", "sample_rate", "goodput_qps", "p50_ms", "p99_ms",
		"p50_err_pct", "p99_err_pct", "within_ci", "bg_arr", "bg_lost_by_cause", "leaked")
	t.Note = "partition + DVFS degrade at backend rho 0.8; within_ci gates sampled quantiles\n" +
		"against the full run during the fault window and after heal; bg_lost_by_cause must\n" +
		"sum exactly into shed+unreachable; the chaos row is a hybrid-mode invariant search"

	const (
		qps        = 1600.0 // backend capacity 2000 → rho 0.8
		sampleRate = 0.25
	)
	warm, phaseDur := o.window(des.Second, 4*des.Second)
	fullScale := o.scale() >= 0.9
	at := func(frac float64) des.Time { return warm + des.Time(frac*float64(phaseDur)) }

	// The accuracy schedule: backend machine underclocked to 90% capacity
	// (latency shifts, still stable) with a partition severing the tiers
	// inside the degrade window. Everything heals by 0.8·phase.
	accuracyFaults := fault.Plan{Events: []fault.Event{
		{At: at(0.20), Kind: fault.DegradeFreq, Machine: "m1", FreqMHz: 1800, Until: at(0.80)},
		{At: at(0.40), Kind: fault.PartitionStart,
			GroupA: []string{"m0"}, GroupB: []string{"m1"}, Until: at(0.55)},
	}}

	run := func(plan fault.Plan, hc *hybrid.Config, w, d des.Time) (*sim.Report, error) {
		s, err := hybridFaultSim(o.Seed, qps, hc)
		if err != nil {
			return nil, err
		}
		if err := s.InstallFaults(plan); err != nil {
			return nil, err
		}
		return s.Run(w, d)
	}
	addRow := func(phase, fid string, rate float64, rep *sim.Report,
		errP50, errP99 float64, withCI string) error {
		if err := checkConservation(rep); err != nil {
			return fmt.Errorf("hybridfault %s/%s: %w", phase, fid, err)
		}
		fmtErr := func(e float64) string {
			if e < 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", 100*e)
		}
		t.Add(phase, fid,
			fmt.Sprintf("%.4g", rate),
			fmt.Sprintf("%.0f", rep.GoodputQPS),
			fmt.Sprintf("%.3f", rep.Latency.P50().Millis()),
			fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
			fmtErr(errP50), fmtErr(errP99), withCI,
			fmt.Sprintf("%d", rep.BackgroundArrivals),
			formatByCause(rep.BackgroundShedByCause),
			"0",
		)
		return nil
	}

	// Accuracy: the "during" window spans the whole fault schedule; the
	// "after" window starts once every fault has healed. The during-window
	// tolerances carry extra headroom — the fluid equilibrium tracks fault
	// transients as a sequence of stationary points, which is the
	// approximation this experiment is bounding.
	type phaseSpec struct {
		name         string
		w, d         des.Time
		tol50, tol99 func(n float64) float64
	}
	phases := []phaseSpec{
		{"during", warm, phaseDur,
			func(n float64) float64 { return 0.15 + 3/math.Sqrt(n) },
			func(n float64) float64 { return 0.30 + 8/math.Sqrt(n) }},
		{"after", warm + phaseDur, phaseDur,
			func(n float64) float64 { return 0.10 + 2/math.Sqrt(n) },
			func(n float64) float64 { return 0.20 + 6/math.Sqrt(n) }},
	}
	for _, ph := range phases {
		full, err := run(accuracyFaults, nil, ph.w, ph.d)
		if err != nil {
			return nil, err
		}
		if err := addRow(ph.name, "full", 1, full, -1, -1, "-"); err != nil {
			return nil, err
		}
		hyb, err := run(accuracyFaults, &hybrid.Config{SampleRate: sampleRate}, ph.w, ph.d)
		if err != nil {
			return nil, err
		}
		n := math.Max(1, float64(hyb.Completions))
		e50 := relErr(hyb.Latency.P50().Seconds(), full.Latency.P50().Seconds())
		e99 := relErr(hyb.Latency.P99().Seconds(), full.Latency.P99().Seconds())
		within := "yes"
		if e50 > ph.tol50(n) || e99 > ph.tol99(n) {
			within = "no"
			if fullScale {
				return nil, fmt.Errorf("hybridfault %s: sampled quantiles outside CI bounds "+
					"(p50 err %.1f%% tol %.1f%%, p99 err %.1f%% tol %.1f%%)",
					ph.name, 100*e50, 100*ph.tol50(n), 100*e99, 100*ph.tol99(n))
			}
		}
		if err := addRow(ph.name, "hybrid", sampleRate, hyb, e50, e99, within); err != nil {
			return nil, err
		}
	}

	// Equivalence: sample rate 1.0 under the same fault schedule must be
	// bit-identical to full DES — faults resolve nothing in an empty tier.
	span := 2 * phaseDur
	plain, err := run(accuracyFaults, nil, warm, span)
	if err != nil {
		return nil, err
	}
	unit, err := run(accuracyFaults, &hybrid.Config{SampleRate: 1}, warm, span)
	if err != nil {
		return nil, err
	}
	if validate.Fingerprint(plain) != validate.Fingerprint(unit) {
		return nil, fmt.Errorf("hybridfault: sample rate 1.0 fingerprint diverged from full DES under faults")
	}
	if err := addRow("equiv", "hybrid-unit", 1, unit, 0, 0, "yes"); err != nil {
		return nil, err
	}

	// Attribution: a saturating DVFS degrade, a partition, and a gray link
	// in disjoint windows — every lost background request must carry its
	// causing fault, and the per-cause sum must close the books exactly
	// (checkConservation enforces ΣByCause == shed + unreachable).
	attribFaults := fault.Plan{Events: []fault.Event{
		{At: at(0.10), Kind: fault.DegradeFreq, Machine: "m1", FreqMHz: 1000, Until: at(0.40)},
		{At: at(0.50), Kind: fault.PartitionStart,
			GroupA: []string{"m0"}, GroupB: []string{"m1"}, Until: at(0.60)},
		{At: at(0.70), Kind: fault.SetLink, Src: "m0", Dst: "m1", Drop: 0.2, Until: at(0.90)},
	}}
	attrib, err := run(attribFaults, &hybrid.Config{SampleRate: sampleRate}, warm, phaseDur)
	if err != nil {
		return nil, err
	}
	for _, cause := range []string{hybrid.CauseDegradeFreq, hybrid.CausePartition, hybrid.CauseGrayLink} {
		if attrib.BackgroundShedByCause[cause] == 0 {
			return nil, fmt.Errorf("hybridfault: no background loss attributed to %s (%v)",
				cause, attrib.BackgroundShedByCause)
		}
	}
	if err := addRow("attrib", "hybrid", sampleRate, attrib, -1, -1, "-"); err != nil {
		return nil, err
	}

	// Chaos coverage: generated fault schedules against the robust config,
	// full invariant battery in hybrid mode — including the cross-fidelity
	// check that re-runs each schedule at sample rate 1.0 and demands a
	// bit-identical fingerprint to full DES. Zero violations required.
	dir, err := configDir("robust")
	if err != nil {
		return nil, err
	}
	trials := 200
	if !fullScale {
		trials = int(math.Max(5, 200*o.scale()))
	}
	res, err := chaos.Run(chaos.Options{
		ConfigDir:  dir,
		Seed:       o.Seed,
		Trials:     trials,
		CorpusDir:  "", // findings would be a failure; no corpus to keep
		Fidelity:   "hybrid",
		SampleRate: sampleRate,
	})
	if err != nil {
		return nil, fmt.Errorf("hybridfault chaos search: %w", err)
	}
	if len(res.Findings) > 0 {
		f := res.Findings[0]
		return nil, fmt.Errorf("hybridfault: hybrid chaos search found %d violation(s); first: trial %d %s (%s)",
			len(res.Findings), f.Trial, f.Violation, f.Detail)
	}
	t.Add("chaos", "hybrid", fmt.Sprintf("%.4g", sampleRate),
		"-", "-", "-", "-", "-", "pass", "-",
		fmt.Sprintf("trials=%d findings=0", res.Trials), "0")
	return t, nil
}

// hybridFaultSim assembles the two-tier scenario: front (deterministic
// 1ms, 4 cores, DVFS-capable m0) calling backend (exponential 2ms, 4
// cores, DVFS-capable m1) under open-loop Poisson load at backend rho 0.8.
func hybridFaultSim(seed uint64, qps float64, hc *hybrid.Config) (*sim.Sim, error) {
	s := sim.New(sim.Options{Seed: seed})
	fs := cluster.FreqSpec{MinMHz: 1000, MaxMHz: 2000, StepMHz: 100}
	s.AddMachine("m0", 4, fs)
	s.AddMachine("m1", 4, fs)
	if _, err := s.Deploy(service.SingleStage("front", dist.NewDeterministic(float64(des.Millisecond))),
		sim.RoundRobin, sim.Placement{Machine: "m0", Cores: 4}); err != nil {
		return nil, err
	}
	if _, err := s.Deploy(service.SingleStage("backend", dist.NewExponential(float64(2*des.Millisecond))),
		sim.RoundRobin, sim.Placement{Machine: "m1", Cores: 4}); err != nil {
		return nil, err
	}
	if err := s.SetTopology(graph.Linear("main", "front", "backend")); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(qps), Proc: workload.Poisson})
	if hc != nil {
		s.SetHybrid(*hc)
	}
	return s, nil
}

// formatByCause renders the attribution map as "cause:count,..." in
// sorted cause order, or "-" when the tier booked no losses.
func formatByCause(m map[string]uint64) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, ",")
}

func init() {
	Registry["hybridfault"] = HybridFault
}
