package experiments

import (
	"fmt"

	"uqsim/internal/apps"
	"uqsim/internal/des"
	"uqsim/internal/service"
	"uqsim/internal/sim"
)

// AblationNoBatching quantifies design decision #1 of DESIGN.md: disabling
// the epoll/socket batch amortization (processing every job individually,
// full base cost each time) lowers the saturation throughput — the same
// modelling gap the BigHouse comparison exposes, isolated inside µqSim.
func AblationNoBatching(o Opts) (*Table, error) {
	t := NewTable("Ablation — epoll batch amortization",
		"model", "saturation_qps")
	t.Note = "batching amortizes per-dispatch base costs; without it capacity drops"
	base := apps.Memcached()
	noBatch := disableBatching(base)
	for _, c := range []struct {
		label string
		bp    *service.Blueprint
	}{{"batched (µqSim)", base}, {"unbatched (ablated)", noBatch}} {
		sat, err := saturation(o, func(qps float64) (*sim.Sim, error) {
			return apps.SingleService(c.bp, "memcached_read", 4, qps, o.Seed, nil)
		}, 900000)
		if err != nil {
			return nil, err
		}
		t.Add(c.label, fmt.Sprintf("%.0f", sat))
	}
	return t, nil
}

// disableBatching deep-copies a blueprint with all batching turned off and
// per-connection queues replaced by plain FIFOs.
func disableBatching(bp *service.Blueprint) *service.Blueprint {
	c := *bp
	c.Name = bp.Name + "_nobatch"
	c.Stages = append([]service.StageSpec(nil), bp.Stages...)
	for i := range c.Stages {
		c.Stages[i].Batching = false
	}
	return &c
}

// AblationNoNetproc quantifies design decision #2: without the shared
// interrupt-processing service, the 16-way load-balancing scale-out keeps
// scaling linearly instead of flattening near 120k QPS.
func AblationNoNetproc(o Opts) (*Table, error) {
	t := NewTable("Ablation — network interrupt processing",
		"servers", "with_netproc_qps", "without_netproc_qps")
	t.Note = "paper Fig. 8's sub-linear 16-way point comes from soft_irq saturation"
	for _, n := range []int{8, 16} {
		n := n
		with, err := saturation(o, func(qps float64) (*sim.Sim, error) {
			return apps.LoadBalanced(apps.ScaleOutConfig{Seed: o.Seed, QPS: qps, Servers: n})
		}, float64(n)*9000*2)
		if err != nil {
			return nil, err
		}
		without, err := saturation(o, func(qps float64) (*sim.Sim, error) {
			return apps.LoadBalanced(apps.ScaleOutConfig{Seed: o.Seed, QPS: qps, Servers: n, NoNetwork: true})
		}, float64(n)*9000*2)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", with),
			fmt.Sprintf("%.0f", without))
	}
	return t, nil
}

// AblationNoBlocking quantifies design decision #3: connection-level
// blocking (finite http/1.1 connection pools) bounds in-flight requests,
// so the saturated system degrades by queueing at the connection pool
// instead of flooding every stage queue.
func AblationNoBlocking(o Opts) (*Table, error) {
	t := NewTable("Ablation — http/1.1 connection blocking",
		"model", "offered_qps", "p99_ms", "in_flight_at_end")
	t.Note = "without pools, overload floods the service queues (unbounded in-flight)"
	w, d := o.window(200*des.Millisecond, des.Second)
	const overload = 100000 // ≈1.4× the 8p capacity
	for _, c := range []struct {
		label      string
		noBlocking bool
	}{{"blocking (µqSim)", false}, {"no blocking (ablated)", true}} {
		s, err := apps.TwoTier(apps.TwoTierConfig{
			Seed: o.Seed, QPS: overload, Network: true, NoBlocking: c.noBlocking,
		})
		if err != nil {
			return nil, err
		}
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, err
		}
		t.Add(c.label,
			fmt.Sprintf("%d", overload),
			fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
			fmt.Sprintf("%d", rep.InFlight))
	}
	return t, nil
}

// AblationLBPolicies compares load-balancing policies on the scale-out
// scenario at high load: least-loaded smooths tail latency relative to
// random; round-robin sits between.
func AblationLBPolicies(o Opts) (*Table, error) {
	t := NewTable("Ablation — load-balancing policy", "policy", "p99_ms", "goodput_qps")
	w, d := o.window(300*des.Millisecond, des.Second)
	for _, c := range []struct {
		label  string
		policy sim.Policy
	}{{"round_robin", sim.RoundRobin}, {"random", sim.Random}, {"least_loaded", sim.LeastLoaded}} {
		s, err := apps.LoadBalanced(apps.ScaleOutConfig{Seed: o.Seed, QPS: 30000, Servers: 4})
		if err != nil {
			return nil, err
		}
		dep, ok := s.Deployment("nginx")
		if !ok {
			return nil, fmt.Errorf("experiments: nginx deployment missing")
		}
		dep.LB = c.policy
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, err
		}
		t.Add(c.label,
			fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
			fmt.Sprintf("%.0f", rep.GoodputQPS))
	}
	return t, nil
}
