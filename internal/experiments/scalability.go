package experiments

import (
	"fmt"
	"time"

	"uqsim/internal/apps"
	"uqsim/internal/des"
	"uqsim/internal/pdes"
)

// Scalability measures the simulator itself — the "scalable" half of the
// paper's title. Two series per cluster size:
//
//   - engine=sim: the full sequential simulator running the tail-at-scale
//     app, the reference for absolute event throughput.
//   - engine=pdes: the sharded conservative-parallel model (one LP per
//     machine plus a root LP), swept over worker counts. The speedup
//     column is each worker count's events/s relative to the same
//     cluster at workers=1; on a multi-core host it shows the parallel
//     engine's scaling, and every worker count produces a bit-identical
//     trace (see internal/pdes).
func Scalability(o Opts) (*Table, error) {
	t := NewTable("Scalability — simulator throughput vs cluster size and workers",
		"servers", "engine", "workers", "virtual_s", "requests", "events",
		"wall_ms", "events_per_wall_s", "speedup")
	t.Note = "speedup = pdes events/s vs the same cluster at workers=1"
	clusters := []int{10, 50, 100, 500, 1000}
	workers := []int{1, 2, 4, 8}
	if o.scale() < 0.5 {
		clusters = []int{10, 100}
		workers = []int{1, 4}
	}
	_, dur := o.window(0, 10*des.Second)
	for _, n := range clusters {
		s, err := apps.TailAtScale(apps.TailAtScaleConfig{
			Seed: o.Seed, QPS: 50, Servers: n, SlowFraction: 0.01,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := s.Run(0, dur)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		if err := checkConservation(rep); err != nil {
			return nil, err
		}
		events := s.Engine().Processed()
		t.Add(
			fmt.Sprintf("%d", n), "sim", "1",
			fmt.Sprintf("%.1f", dur.Seconds()),
			fmt.Sprintf("%d", rep.Completions),
			fmt.Sprintf("%d", events),
			fmt.Sprintf("%d", wall.Milliseconds()),
			fmt.Sprintf("%.0f", float64(events)/wall.Seconds()),
			"-",
		)
		var base float64
		for _, w := range workers {
			sc, err := pdes.NewShardedCluster(pdes.ShardedClusterConfig{
				Seed: o.Seed, Machines: n, QPS: 50, SlowFraction: 0.01,
				LPs: n, Workers: w,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			srep := sc.Run(dur)
			wall := time.Since(start)
			rate := float64(srep.Events) / wall.Seconds()
			if w == workers[0] {
				base = rate
			}
			t.Add(
				fmt.Sprintf("%d", n), "pdes",
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%.1f", dur.Seconds()),
				fmt.Sprintf("%d", srep.Requests),
				fmt.Sprintf("%d", srep.Events),
				fmt.Sprintf("%d", wall.Milliseconds()),
				fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.2f", rate/base),
			)
		}
	}
	return t, nil
}

func init() {
	Registry["scalability"] = Scalability
}
