package experiments

import (
	"fmt"
	"time"

	"uqsim/internal/apps"
	"uqsim/internal/des"
)

// Scalability measures the simulator itself — the "scalable" half of the
// paper's title: wall-clock cost and event throughput as the simulated
// cluster grows from laptop-scale to beyond-testbed scale (the fan-out
// study's 1000-server configuration).
func Scalability(o Opts) (*Table, error) {
	t := NewTable("Scalability — simulator throughput vs simulated cluster size",
		"servers", "virtual_s", "requests", "events", "wall_ms", "events_per_wall_s")
	t.Note = "event throughput stays ~flat as the simulated system grows"
	clusters := []int{10, 50, 100, 500, 1000}
	if o.scale() < 0.5 {
		clusters = []int{10, 100}
	}
	_, dur := o.window(0, 10*des.Second)
	for _, n := range clusters {
		s, err := apps.TailAtScale(apps.TailAtScaleConfig{
			Seed: o.Seed, QPS: 50, Servers: n, SlowFraction: 0.01,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := s.Run(0, dur)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		events := s.Engine().Processed()
		rate := float64(events) / wall.Seconds()
		t.Add(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", dur.Seconds()),
			fmt.Sprintf("%d", rep.Completions),
			fmt.Sprintf("%d", events),
			fmt.Sprintf("%d", wall.Milliseconds()),
			fmt.Sprintf("%.0f", rate),
		)
	}
	return t, nil
}

func init() {
	Registry["scalability"] = Scalability
}
