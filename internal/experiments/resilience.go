package experiments

import (
	"fmt"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

func init() {
	Registry["resilience"] = Resilience
}

// resilienceScenario builds one service with exponential 1ms request cost
// spread across instances (one core each, ≈1000 QPS capacity per instance),
// driven open-loop at qps.
func resilienceScenario(seed uint64, qps float64, machines []string, perMachine int) (*sim.Sim, error) {
	s := sim.New(sim.Options{Seed: seed})
	placements := make([]sim.Placement, 0, len(machines)*perMachine)
	for _, m := range machines {
		s.AddMachine(m, 2*perMachine, cluster.FreqSpec{})
		for i := 0; i < perMachine; i++ {
			placements = append(placements, sim.Placement{Machine: m, Cores: 1})
		}
	}
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewExponential(float64(des.Millisecond))),
		sim.RoundRobin, placements...); err != nil {
		return nil, err
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(qps)})
	return s, nil
}

// Resilience demonstrates the fault-injection subsystem end to end:
// (a) an instance outage under retrying callers — immediate retries storm
// the surviving instance while exponential backoff lets it drain;
// (b) a machine crash plus recovery with retry masking — the availability
// dip is absorbed with no leaked requests;
// (c) 2× overload with and without queue-length load shedding — shedding
// trades goodput you cannot serve anyway for a bounded tail.
func Resilience(o Opts) (*Table, error) {
	t := NewTable("Resilience — retry storms, crash recovery, load shedding",
		"part", "scenario", "goodput_qps", "p99_ms", "retries", "shed", "dropped", "leaked")
	t.Note = "leaked must be 0: arrivals == completions + timeouts + shed + dropped + in-flight"
	w, d := o.window(200*des.Millisecond, 2*des.Second)

	addRow := func(part, scenario string, rep *sim.Report) {
		t.Add(part, scenario,
			fmt.Sprintf("%.0f", rep.GoodputQPS),
			fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
			fmt.Sprintf("%d", rep.Retries),
			fmt.Sprintf("%d", rep.Shed),
			fmt.Sprintf("%d", rep.Dropped),
			fmt.Sprintf("%d", leaked(rep)))
	}

	// (a) Retry amplification: kill one of two instances for 15% of the
	// window at 60% total load. The survivor runs at 1.2× capacity, its
	// queue crosses the edge timeout, and every abandoned attempt still
	// burns server time — with no backoff each timeout immediately becomes
	// another attempt on the overloaded survivor (the classic storm), while
	// backoff spreads the re-offered load and a breaker stops offering it.
	kill := w + des.Time(float64(d)*0.3)
	restart := kill + des.Time(float64(d)*0.15)
	for _, c := range []struct {
		label  string
		policy *fault.Policy
	}{
		{"no-policy", nil},
		{"retry-no-backoff", &fault.Policy{Timeout: 15 * des.Millisecond, MaxRetries: 3}},
		{"retry-backoff-100ms", &fault.Policy{
			Timeout: 15 * des.Millisecond, MaxRetries: 3,
			BackoffBase: 100 * des.Millisecond, BackoffJitter: 0.5}},
		{"retry-plus-breaker", &fault.Policy{
			Timeout: 15 * des.Millisecond, MaxRetries: 3,
			BackoffBase: 100 * des.Millisecond, BackoffJitter: 0.5,
			Breaker: &fault.BreakerSpec{ErrorThreshold: 0.5, Window: 20, Cooldown: 50 * des.Millisecond}}},
	} {
		s, err := resilienceScenario(o.Seed, 1200, []string{"m0"}, 2)
		if err != nil {
			return nil, err
		}
		if c.policy != nil {
			if err := s.SetServicePolicy("svc", *c.policy); err != nil {
				return nil, err
			}
		}
		if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
			{At: kill, Kind: fault.KillInstance, Service: "svc", Instance: 0},
			{At: restart, Kind: fault.RestartInstance, Service: "svc", Instance: 0},
		}}); err != nil {
			return nil, err
		}
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, err
		}
		addRow("a:instance-outage", c.label, rep)
	}

	// (b) Machine crash and recovery: one of two machines (half the
	// capacity) crashes for 5% of the window at 60% total load. Load
	// balancing routes new arrivals around the dead machine either way;
	// the difference is the work in flight on it — dropped without a
	// policy, retried to zero drops with one. Nothing leaks either way.
	crash := w + des.Time(float64(d)*0.4)
	recover := crash + des.Time(float64(d)*0.05)
	for _, c := range []struct {
		label  string
		policy *fault.Policy
	}{
		{"no-policy", nil},
		{"retry-masked", &fault.Policy{
			Timeout: 80 * des.Millisecond, MaxRetries: 3,
			BackoffBase: 5 * des.Millisecond, BackoffJitter: 0.5}},
	} {
		s, err := resilienceScenario(o.Seed, 1200, []string{"m0", "m1"}, 1)
		if err != nil {
			return nil, err
		}
		if c.policy != nil {
			if err := s.SetServicePolicy("svc", *c.policy); err != nil {
				return nil, err
			}
		}
		if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
			{At: crash, Kind: fault.CrashMachine, Machine: "m1"},
			{At: recover, Kind: fault.RecoverMachine, Machine: "m1"},
		}}); err != nil {
			return nil, err
		}
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, err
		}
		addRow("b:machine-crash", c.label, rep)
	}

	// (c) 2× overload: an unbounded queue grows for the whole window, so
	// the tail is the queue; shedding rejects what cannot be served and
	// keeps the tail at the queue bound.
	for _, c := range []struct {
		label    string
		maxQueue int
	}{
		{"unbounded-queue", 0},
		{"shed-at-64", 64},
	} {
		s, err := resilienceScenario(o.Seed, 2000, []string{"m0"}, 1)
		if err != nil {
			return nil, err
		}
		if c.maxQueue > 0 {
			if err := s.SetMaxQueue("svc", c.maxQueue); err != nil {
				return nil, err
			}
		}
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, err
		}
		addRow("c:2x-overload", c.label, rep)
	}
	return t, nil
}
