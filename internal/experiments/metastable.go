package experiments

import (
	"fmt"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

func init() {
	Registry["metastable"] = Metastable
}

// metastableScenario is a two-machine, two-tier chain: a cheap front tier
// on m0 calling a 1-core backend on m1 (exp 1ms service, ≈1000 QPS
// capacity) across the one machine boundary a partition can cut. The
// client gives up at 100ms — far beyond the healthy p99 (~23ms at 0.8×
// load), so timeouts are rare until something breaks — and re-issues
// timed-out requests up to clientRetries times while the abandoned work
// runs to completion. That re-issue is the feedback loop that lets a
// transient partition become a permanent overload.
func metastableScenario(seed uint64, qps float64, clientRetries int) (*sim.Sim, error) {
	s := sim.New(sim.Options{Seed: seed})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	s.AddMachine("m1", 2, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("front", dist.NewDeterministic(float64(100*des.Microsecond))),
		sim.RoundRobin, sim.Placement{Machine: "m0", Cores: 2}); err != nil {
		return nil, err
	}
	if _, err := s.Deploy(service.SingleStage("backend", dist.NewExponential(float64(des.Millisecond))),
		sim.RoundRobin, sim.Placement{Machine: "m1", Cores: 1}); err != nil {
		return nil, err
	}
	if err := s.SetTopology(graph.Linear("main", "front", "backend")); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{
		Pattern:    workload.ConstantRate(qps),
		Timeout:    100 * des.Millisecond,
		MaxRetries: clientRetries,
	})
	return s, nil
}

// degradedAfter totals the time between from and end spent degraded: the
// sum of bins whose forward 50ms sliding-window goodput is below half the
// offered load. The 50% threshold sits far enough under the healthy mean
// that Poisson bin noise cannot trip it, so a healthy run reports ~0 and a
// pinned retry storm reports nearly the whole post-heal window. The second
// return is true when the final window is still degraded — the run ended
// before the system recovered.
func (gb *goodputBins) degradedAfter(from, end des.Time, offeredQPS float64) (des.Time, bool) {
	kb := int(from / mttrBin)
	nb := int(end / mttrBin)
	const fw = 5
	threshold := 0.5 * offeredQPS * mttrBin.Seconds() * fw
	at := func(i int) int {
		if i < len(gb.counts) {
			return gb.counts[i]
		}
		return 0
	}
	degraded, pinned := 0, false
	for b := kb; b+fw <= nb; b++ {
		sum := 0
		for i := b; i < b+fw; i++ {
			sum += at(i)
		}
		pinned = float64(sum) < threshold
		if pinned {
			degraded++
		}
	}
	return des.Time(degraded) * mttrBin, pinned
}

// Metastable reproduces a metastable failure: a 2-second-scale network
// partition between the tiers at 0.8× load. While the partition is open
// every front→backend attempt fails fast as unreachable; retries at the
// edge and at the client convert the outage into a standing wave of
// re-offered work. After the heal, the naive configuration (deep retry
// budgets, short backoff, aggressive client re-issue) keeps the backend
// past saturation — timed-out requests are re-offered faster than the
// queue drains, served work is abandoned before the client sees it, and
// goodput stays pinned near zero long after the network is whole. The
// mitigated configuration (capped retries, circuit breaker, CoDel-LIFO
// queue) sheds the surge and recovers within a bounded MTTR.
func Metastable(o Opts) (*Table, error) {
	t := NewTable("Metastable failure — retry storm outlives a healed partition",
		"scenario", "goodput_qps", "p99_ms", "unreachable", "retries", "wasted",
		"degraded_ms_after_heal", "leaked")
	t.Note = "2s partition at 0.8× load; degraded: total time after the heal with " +
		"smoothed goodput under 50% of offered load ('+' = still degraded when the " +
		"run ended); leaked must be 0"
	w, d := o.window(300*des.Millisecond, 5*des.Second)
	start := w + des.Time(float64(d)*0.2)
	heal := start + des.Time(float64(d)*0.4)
	const offered = 800.0

	type result struct {
		rep      *sim.Report
		unreach  uint64
		degraded des.Time
		pinned   bool
	}
	run := func(naive, partitioned bool) (*result, error) {
		clientRetries := 1
		if naive {
			clientRetries = 8
		}
		s, err := metastableScenario(o.Seed, offered, clientRetries)
		if err != nil {
			return nil, err
		}
		if naive {
			// Unbounded-in-spirit retries: a deep budget on the edge with
			// near-immediate re-offer, on top of the client's own storm.
			// The 40ms edge timeout is harmless while the queue is short
			// (p(sojourn > 40ms) ≈ 3e-4) and catastrophic once it is not.
			if err := s.SetServicePolicy("backend", fault.Policy{
				Timeout: 40 * des.Millisecond, MaxRetries: 6,
				BackoffBase: des.Millisecond, BackoffJitter: 0.5,
			}); err != nil {
				return nil, err
			}
		} else {
			if err := s.SetServicePolicy("backend", fault.Policy{
				Timeout: 40 * des.Millisecond, MaxRetries: 1,
				BackoffBase: 20 * des.Millisecond, BackoffJitter: 0.5,
				Breaker: &fault.BreakerSpec{
					ErrorThreshold: 0.5, Window: 20, Cooldown: 100 * des.Millisecond,
				},
			}); err != nil {
				return nil, err
			}
			if err := s.SetQueueDiscipline("backend", fault.QueueDiscipline{
				Kind: fault.QueueCoDelLIFO, Target: 5 * des.Millisecond,
			}); err != nil {
				return nil, err
			}
		}
		if partitioned {
			if err := s.InstallFaults(fault.Plan{Events: []fault.Event{{
				At: start, Kind: fault.PartitionStart, Until: heal,
				GroupA: []string{"m0"}, GroupB: []string{"m1"},
			}}}); err != nil {
				return nil, err
			}
		}
		gb := trackGoodput(s)
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, err
		}
		var unreach uint64
		if n := s.Net(); n != nil {
			unreach = n.Unreachable()
		}
		deg, pinned := gb.degradedAfter(heal, w+d, offered)
		return &result{rep: rep, unreach: unreach, degraded: deg, pinned: pinned}, nil
	}

	addRow := func(label string, r *result) {
		deg := fmt.Sprintf("%.0f", r.degraded.Millis())
		if r.pinned {
			deg += "+"
		}
		t.Add(label,
			fmt.Sprintf("%.0f", r.rep.GoodputQPS),
			fmt.Sprintf("%.3f", r.rep.Latency.P99().Millis()),
			fmt.Sprintf("%d", r.unreach),
			fmt.Sprintf("%d", r.rep.Retries),
			fmt.Sprintf("%d", r.rep.WastedWork),
			deg,
			fmt.Sprintf("%d", leaked(r.rep)))
	}

	for _, c := range []struct {
		label              string
		naive, partitioned bool
	}{
		{"naive-no-fault", true, false},
		{"naive-retries", true, true},
		{"mitigated", false, true},
	} {
		r, err := run(c.naive, c.partitioned)
		if err != nil {
			return nil, err
		}
		addRow(c.label, r)
	}
	return t, nil
}
