package experiments

import (
	"fmt"

	"uqsim/internal/des"
	"uqsim/internal/sim"
)

// Opts controls experiment runs.
type Opts struct {
	// Seed drives every scenario's random streams.
	Seed uint64
	// Scale shrinks measurement windows and sweep densities for quick
	// runs (1 = the full published sweep; 0.1 = smoke test). Values
	// outside (0, 1] are clamped to 1.
	Scale float64
}

func (o Opts) scale() float64 {
	if o.Scale <= 0 || o.Scale > 1 {
		return 1
	}
	return o.Scale
}

// window returns the warmup and measurement durations for a sweep point,
// scaled.
func (o Opts) window(warmup, duration des.Time) (des.Time, des.Time) {
	s := o.scale()
	w := des.Time(float64(warmup) * s)
	d := des.Time(float64(duration) * s)
	if w < 50*des.Millisecond {
		w = 50 * des.Millisecond
	}
	if d < 200*des.Millisecond {
		d = 200 * des.Millisecond
	}
	return w, d
}

// thin reduces a sweep grid according to the scale, always keeping the
// first and last points.
func (o Opts) thin(loads []float64) []float64 {
	s := o.scale()
	if s >= 1 || len(loads) <= 2 {
		return loads
	}
	keep := int(float64(len(loads)) * s)
	if keep < 2 {
		keep = 2
	}
	out := make([]float64, 0, keep)
	for i := 0; i < keep; i++ {
		idx := i * (len(loads) - 1) / (keep - 1)
		out = append(out, loads[idx])
	}
	return out
}

// builder constructs a scenario at one offered load.
type builder func(qps float64) (*sim.Sim, error)

// point is one measured sweep sample.
type point struct {
	OfferedQPS float64
	Rep        *sim.Report
}

// sweep measures the load–latency curve of a scenario across loads.
func sweep(o Opts, build builder, loads []float64, warmup, duration des.Time) ([]point, error) {
	w, d := o.window(warmup, duration)
	var out []point
	for _, qps := range o.thin(loads) {
		s, err := build(qps)
		if err != nil {
			return nil, fmt.Errorf("experiments: building at %v QPS: %w", qps, err)
		}
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, fmt.Errorf("experiments: running at %v QPS: %w", qps, err)
		}
		if err := checkConservation(rep); err != nil {
			return nil, fmt.Errorf("experiments: at %v QPS: %w", qps, err)
		}
		out = append(out, point{OfferedQPS: qps, Rep: rep})
	}
	return out, nil
}

// addCurve writes a sweep's points into a table as rows tagged with a
// configuration label.
func addCurve(t *Table, label string, pts []point) {
	for _, p := range pts {
		t.Add(
			label,
			fmt.Sprintf("%.0f", p.OfferedQPS),
			fmt.Sprintf("%.0f", p.Rep.GoodputQPS),
			fmt.Sprintf("%.3f", p.Rep.Latency.Mean().Millis()),
			fmt.Sprintf("%.3f", p.Rep.Latency.P50().Millis()),
			fmt.Sprintf("%.3f", p.Rep.Latency.P99().Millis()),
		)
	}
}

// curveColumns is the shared header of load–latency tables.
func curveColumns() []string {
	return []string{"config", "offered_qps", "goodput_qps", "mean_ms", "p50_ms", "p99_ms"}
}

// grid builds an inclusive linear load grid.
func grid(from, to, step float64) []float64 {
	var out []float64
	for v := from; v <= to+1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// saturation measures sustained goodput under the given overload.
func saturation(o Opts, build builder, overload float64) (float64, error) {
	w, d := o.window(200*des.Millisecond, des.Second)
	s, err := build(overload)
	if err != nil {
		return 0, err
	}
	rep, err := s.Run(w, d)
	if err != nil {
		return 0, err
	}
	if err := checkConservation(rep); err != nil {
		return 0, err
	}
	return rep.GoodputQPS, nil
}
