package experiments

import (
	"fmt"

	"uqsim/internal/config"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

// This file is the shared core of the load-sweep workflow: cmd/uqsim-sweep
// runs these points serially, and the farm (internal/farm) fans the same
// points out across worker processes. Both paths must produce identical
// rows, byte for byte — the farm's determinism contract is that a merged
// campaign CSV equals the serial CLI's output at any worker count.

// SweepColumns is the header of a load-sweep table.
func SweepColumns() []string {
	return []string{"offered_qps", "goodput_qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "in_flight"}
}

// SweepGrid expands the inclusive load grid [from, to] in step increments,
// exactly as the serial CLI iterates it. Both the farm's campaign
// expansion and cmd/uqsim-sweep call this, so a sweep point is the same
// float64 in either path.
func SweepGrid(from, to, step float64) []float64 {
	var out []float64
	for qps := from; qps <= to+1e-9; qps += step {
		out = append(out, qps)
	}
	return out
}

// SweepRow measures one load point of the configured scenario and formats
// it as a table row in SweepColumns order. Each point assembles a fresh
// simulation from the config directory (same seed, same windows), so rows
// are independent: any subset can run anywhere, in any order, and still
// match a serial sweep.
func SweepRow(cfgDir string, qps float64) ([]string, error) {
	return SweepRowMod(cfgDir, qps, nil)
}

// SweepRowMod is SweepRow with a hook to adjust the assembled simulation
// before it runs (fidelity overrides, attached monitors). The
// byte-identical serial-vs-farm contract extends to any deterministic mod
// applied equally on both paths.
func SweepRowMod(cfgDir string, qps float64, mod func(*sim.Sim) error) ([]string, error) {
	setup, err := config.LoadDir(cfgDir)
	if err != nil {
		return nil, err
	}
	cc := setup.Sim.Client()
	cc.Pattern = workload.ConstantRate(qps)
	cc.ClosedUsers = 0
	cc.Sessions = nil
	setup.Sim.SetClient(cc)
	if mod != nil {
		if err := mod(setup.Sim); err != nil {
			return nil, err
		}
	}
	rep, err := setup.Sim.Run(setup.Warmup, setup.Duration)
	if err != nil {
		return nil, err
	}
	return []string{
		fmt.Sprintf("%.0f", qps),
		fmt.Sprintf("%.0f", rep.GoodputQPS),
		fmt.Sprintf("%.3f", rep.Latency.Mean().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P50().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P95().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
		fmt.Sprintf("%d", rep.InFlight),
	}, nil
}

// ApplyFidelity applies the CLI -fidelity/-sample-rate overrides to an
// assembled simulation: "full" clears any configured hybrid split,
// "hybrid" installs one (sample rate defaults to the config's, else 0.01),
// and a bare sample-rate override retunes an already-hybrid setup. The
// logic lives in internal/config so the chaos harness (which this package
// imports) can share it without an import cycle.
func ApplyFidelity(s *sim.Sim, fidelity string, sampleRate float64) error {
	return config.ApplyFidelity(s, fidelity, sampleRate)
}

// SweepTable builds the table cmd/uqsim-sweep prints, ready for rows from
// SweepRow.
func SweepTable(cfgDir string) *Table {
	return NewTable(fmt.Sprintf("Load sweep of %s", cfgDir), SweepColumns()...)
}
