package experiments

import (
	"fmt"

	"uqsim/internal/des"
	"uqsim/internal/validate"
)

// Validation runs the closed-form validation battery (the stand-in for the
// paper's real-testbed §IV): every row compares a simulated statistic to
// exact queueing theory.
func Validation(o Opts) (*Table, error) {
	t := NewTable("Validation — simulator vs closed-form queueing theory",
		"check", "measured_ms", "expected_ms", "error", "tolerance", "verdict")
	t.Note = "substitute for the paper's real-server validation (no testbed available)"
	_, dur := o.window(0, 20*des.Second)
	checks, err := validate.Suite(validate.Options{Seed: o.Seed, Duration: dur})
	if err != nil {
		return nil, err
	}
	for _, c := range checks {
		verdict := "PASS"
		if !c.Pass() {
			verdict = "FAIL"
		}
		t.Add(
			c.Name,
			fmt.Sprintf("%.4f", c.Measured*1000),
			fmt.Sprintf("%.4f", c.Expected*1000),
			fmt.Sprintf("%.1f%%", 100*c.Error()),
			fmt.Sprintf("%.0f%%", 100*c.Tolerance),
			verdict,
		)
	}
	return t, nil
}

func init() {
	Registry["validation"] = Validation
}
