package experiments

import (
	"fmt"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

func init() {
	Registry["overload"] = Overload
}

// overloadSLO is the end-to-end latency objective shared by every
// configuration in the sweep: the baseline client abandons requests this
// old, the graceful configurations carry it as a propagated deadline
// budget instead.
const overloadSLO = 20 * des.Millisecond

// overloadInstances sets the service capacity: one-core instances with
// exponential 1ms service time, ≈1000 QPS each.
const overloadInstances = 2

// overloadScenario builds the shared substrate — one service, exponential
// 1ms request cost across one-core instances split over two machines —
// driven open-loop at qps. The knobs (budget, queue discipline, hedging)
// are layered on by the caller.
func overloadScenario(seed uint64, qps float64) (*sim.Sim, error) {
	s := sim.New(sim.Options{Seed: seed})
	placements := make([]sim.Placement, 0, overloadInstances)
	for i := 0; i < overloadInstances; i++ {
		m := fmt.Sprintf("m%d", i%2)
		placements = append(placements, sim.Placement{Machine: m, Cores: 1})
	}
	s.AddMachine("m0", 2, cluster.FreqSpec{})
	s.AddMachine("m1", 2, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewExponential(float64(des.Millisecond))),
		sim.RoundRobin, placements...); err != nil {
		return nil, err
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		return nil, err
	}
	return s, nil
}

// Overload demonstrates graceful degradation under sustained overload.
// Three configurations sweep offered load from 0.5× to 1.5× of saturation:
//
//   - fifo-baseline: FIFO queues and a client that abandons requests older
//     than the SLO, but no deadline propagation — the server keeps serving
//     requests nobody is waiting for. Past saturation the backlog outgrows
//     the client's patience and goodput collapses toward zero.
//   - deadline-codel-lifo: the same SLO carried as a propagated budget;
//     expired requests cancel their queued work, and a CoDel-governed
//     adaptive-LIFO queue serves the freshest (still-live) work first.
//     Goodput holds near capacity however far past saturation the load goes.
//   - deadline-codel-lifo-hedge: adds a p95 latency hedge on the edge,
//     trimming the served tail by racing a backup on the other instance.
func Overload(o Opts) (*Table, error) {
	t := NewTable("Overload — graceful degradation via deadlines, CoDel-LIFO admission, and hedging",
		"config", "load_x", "offered_qps", "goodput_qps", "p99_ms",
		"deadline", "shed", "timeouts", "hedges", "wasted", "canceled", "leaked")
	t.Note = fmt.Sprintf("capacity ≈%d QPS, SLO %v: leaked must be 0 in every cell "+
		"(arrivals == completions + timeouts + deadline + shed + dropped + in-flight)",
		overloadInstances*1000, overloadSLO)
	w, d := o.window(200*des.Millisecond, 2*des.Second)

	capacity := float64(overloadInstances * 1000)
	configs := []struct {
		label    string
		budget   bool
		queue    bool
		hedge    bool
		clientTO des.Time
	}{
		{label: "fifo-baseline", clientTO: overloadSLO},
		{label: "deadline-codel-lifo", budget: true, queue: true},
		{label: "deadline-codel-lifo-hedge", budget: true, queue: true, hedge: true},
	}
	for _, c := range configs {
		for _, loadX := range o.thin([]float64{0.5, 0.75, 1.0, 1.25, 1.5}) {
			qps := capacity * loadX
			s, err := overloadScenario(o.Seed, qps)
			if err != nil {
				return nil, err
			}
			cfg := sim.ClientConfig{Pattern: workload.ConstantRate(qps), Timeout: c.clientTO}
			if c.budget {
				cfg.Budget = dist.NewDeterministic(float64(overloadSLO))
			}
			s.SetClient(cfg)
			if c.queue {
				if err := s.SetQueueDiscipline("svc", fault.QueueDiscipline{
					Kind:   fault.QueueCoDelLIFO,
					Target: 5 * des.Millisecond,
				}); err != nil {
					return nil, err
				}
			}
			if c.hedge {
				if err := s.SetServicePolicy("svc", fault.Policy{
					Hedge: &fault.HedgeSpec{Quantile: 0.95, MinSamples: 32},
				}); err != nil {
					return nil, err
				}
			}
			rep, err := s.Run(w, d)
			if err != nil {
				return nil, err
			}
			if err := checkConservation(rep); err != nil {
				return nil, err
			}
			t.Add(c.label,
				fmt.Sprintf("%.2f", loadX),
				fmt.Sprintf("%.0f", qps),
				fmt.Sprintf("%.0f", rep.GoodputQPS),
				fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
				fmt.Sprintf("%d", rep.DeadlineExpired),
				fmt.Sprintf("%d", rep.Shed),
				fmt.Sprintf("%d", rep.Timeouts),
				fmt.Sprintf("%d", rep.HedgesIssued),
				fmt.Sprintf("%d", rep.WastedWork),
				fmt.Sprintf("%d", rep.CanceledWork),
				fmt.Sprintf("%d", leaked(rep)))
		}
	}
	return t, nil
}
