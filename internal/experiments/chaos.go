package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uqsim/internal/chaos"
	"uqsim/internal/config"
)

func init() {
	Registry["chaos"] = Chaos
}

// chaosConfigDir locates configs/metastable whether the caller runs from
// the repo root (the binaries) or from a package directory (go test).
func chaosConfigDir() (string, error) { return configDir("metastable") }

// configDir locates configs/<name> from the repo root or a package
// directory.
func configDir(name string) (string, error) {
	for _, dir := range []string{
		filepath.Join("configs", name),
		filepath.Join("..", "..", "configs", name),
	} {
		if _, err := os.Stat(filepath.Join(dir, "client.json")); err == nil {
			return dir, nil
		}
	}
	return "", fmt.Errorf("experiments: configs/%s not found from %s", name, cwd())
}

func cwd() string {
	d, err := os.Getwd()
	if err != nil {
		return "?"
	}
	return d
}

// Chaos demonstrates the chaos-search pipeline end to end on the
// metastable two-tier config: a noisy hand-built schedule — the real
// killer (a partition between the tiers) buried among harmless decoy
// faults — is checked against the invariant battery, the violation is
// delta-debugged down to the minimal reproducing schedule, and the
// minimum is re-verified to confirm it reproduces the identical
// violation. The same pipeline runs generatively in cmd/uqsim-chaos;
// this experiment pins the canonical seeded scenario so the find → check
// → shrink → replay story is itself a regression-tested result.
func Chaos(o Opts) (*Table, error) {
	dir, err := chaosConfigDir()
	if err != nil {
		return nil, err
	}
	h, err := chaos.NewHarness(chaos.Options{ConfigDir: dir})
	if err != nil {
		return nil, err
	}

	// The noisy scenario: one real fault (the partition that ignites the
	// retry storm) plus three decoys mild enough to pass every invariant
	// on their own.
	noisy := chaos.Scenario{
		Seed: o.Seed,
		Actions: []chaos.Action{
			{
				Label: "edge latency backend +2ms (decoy)",
				Events: []config.FaultEventSpec{
					{AtS: 0.6, Kind: "edge_latency", Service: "backend", ExtraMs: 2, UntilS: 1.0},
				},
			},
			{
				Label: "partition m0|m1 (the killer)",
				Partitions: []config.PartitionSpec{
					{AtS: 0.8, UntilS: 1.2, GroupA: []string{"m0"}, GroupB: []string{"m1"}},
				},
			},
			{
				Label: "load ×1.1 (decoy)",
				Events: []config.FaultEventSpec{
					{AtS: 0.5, Kind: "load_step", Factor: 1.1, UntilS: 0.9},
				},
			},
			{
				Label: "gray link dup 5% (decoy)",
				Links: []config.LinkSpec{
					{AtS: 1.0, UntilS: 1.4, Src: "m1", Dst: "m0", Dup: 0.05},
				},
			},
		},
	}

	t := NewTable("Chaos search: find, shrink, replay (metastable two-tier)",
		"step", "events", "violation", "detail")
	t.Note = "seeded retry-storm metastability; shrinking must isolate the partition from the decoys"

	v, _, err := h.Verify(noisy)
	if err != nil {
		return nil, err
	}
	if v == nil {
		t.Add("find", fmt.Sprint(noisy.EventCount()), "none", "noisy scenario unexpectedly passed")
		return t, nil
	}
	t.Add("find", fmt.Sprint(noisy.EventCount()), v.ID, v.Detail)

	min, err := h.Shrink(noisy, v.ID)
	if err != nil {
		return nil, err
	}
	minV, fp, err := h.Verify(min)
	if err != nil {
		return nil, err
	}
	if minV == nil {
		return nil, fmt.Errorf("experiments: shrunk chaos scenario no longer reproduces %s", v.ID)
	}
	t.Add("shrink", fmt.Sprint(min.EventCount()), minV.ID, strings.Join(min.Labels(), ", "))

	// Replay: verifying the minimum again must reproduce the identical
	// simulation — same violation, bit-identical fingerprint.
	v2, fp2, err := h.Verify(min)
	if err != nil {
		return nil, err
	}
	replay := "fingerprint reproduces bit-identically"
	if v2 == nil || v2.ID != minV.ID || fp2 != fp {
		replay = "MISMATCH: replay diverged"
	}
	t.Add("replay", fmt.Sprint(min.EventCount()), minV.ID, replay)
	return t, nil
}
