package experiments

import (
	"fmt"
	"math"

	"uqsim/internal/cluster"
	"uqsim/internal/control"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

func init() {
	Registry["regionloss"] = RegionLoss
}

// regionLossScenario builds the three-region geo-replicated store: one
// replica per region with the home region (east) sized for the full
// load and the remote regions sized for regional spillover only, WAN
// links ordered west (5ms) < eu (40ms) from east, a diurnal east-homed
// client, and a full crash of the east region over the diurnal peak.
// The client calls the store directly — the entry hop stands in for a
// front-end in the client's region, so region routing, WAN delay, and
// stale-read accounting all act on it.
func regionLossScenario(seed uint64, w, d, crash, heal des.Time,
	base, amplitude float64, clientRetries int) (*sim.Sim, error) {
	s := sim.New(sim.Options{Seed: seed})
	s.AddMachine("e0", 4, cluster.FreqSpec{})
	s.AddMachine("w0", 4, cluster.FreqSpec{})
	s.AddMachine("eu0", 4, cluster.FreqSpec{})
	geo, err := s.SetGeography([]cluster.Region{
		{Name: "east", Machines: []string{"e0"}},
		{Name: "west", Machines: []string{"w0"}},
		{Name: "eu", Machines: []string{"eu0"}},
	})
	if err != nil {
		return nil, err
	}
	geo.SetDefaultWAN(cluster.WANLink{Latency: 30 * des.Millisecond})
	if err := geo.SetLink("east", "west", cluster.WANLink{Latency: 5 * des.Millisecond}); err != nil {
		return nil, err
	}
	if err := geo.SetLink("east", "eu", cluster.WANLink{Latency: 40 * des.Millisecond}); err != nil {
		return nil, err
	}
	// East is sized for the whole diurnal peak; the survivors hold one
	// core each (≈1000 QPS), so absorbing the failed-over peak pushes
	// them past saturation — the overload the mitigations must bound.
	if _, err := s.Deploy(service.SingleStage("store", dist.NewExponential(float64(des.Millisecond))),
		sim.RoundRobin,
		sim.Placement{Machine: "e0", Cores: 2},
		sim.Placement{Machine: "w0", Cores: 1},
		sim.Placement{Machine: "eu0", Cores: 1}); err != nil {
		return nil, err
	}
	if err := s.SetReplication("store", sim.ReplicationSpec{Lag: 30 * des.Millisecond}); err != nil {
		return nil, err
	}
	if err := s.SetTopology(graph.Linear("main", "store")); err != nil {
		return nil, err
	}
	// Phase the diurnal cycle so its peak lands mid-outage.
	mid := float64(crash+heal) / 2
	phase := math.Pi/2 - 2*math.Pi*mid/float64(d)
	s.SetClient(sim.ClientConfig{
		Region: "east",
		Pattern: workload.Diurnal{
			Base: base, Amplitude: amplitude, Period: d, Phase: phase,
		},
		Timeout:    100 * des.Millisecond,
		MaxRetries: clientRetries,
	})
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: crash, Kind: fault.CrashDomain, Domain: "east"},
		{At: heal, Kind: fault.RecoverDomain, Domain: "east"},
	}}); err != nil {
		return nil, err
	}
	return s, nil
}

// RegionLoss measures losing a whole region under diurnal load. The
// data plane fails over by itself — nearest-healthy-region routing
// shifts east's traffic to west the moment east's replica leaves the
// rotation — so what distinguishes the cells is what happens to the
// spillover:
//
//   - naive: deep retry budgets at the edge and the client, FIFO
//     queues, no control plane. The saturated survivor converts the
//     outage into a retry storm that outlives the heal, and with
//     nothing promoting the west replica every failed-over read stays
//     stale for the entire outage.
//   - mitigated: capped retries + breaker + CoDel-LIFO (the overload
//     controls) plus the control plane's detector and region failover,
//     which promotes west after the drain grace and bounds the stale
//     window to detection + drain + replication lag.
//
// Goodput dip and post-heal degradation use the diurnal trough as the
// offered floor; failover_ms is the promotion clock minus the crash.
func RegionLoss(o Opts) (*Table, error) {
	t := NewTable("Region loss — geo-replicated failover under diurnal load",
		"scenario", "goodput_qps", "p99_ms", "failover_ms", "dip_ms",
		"degraded_ms_after_heal", "xregion_calls", "stale_reads",
		"retries", "wasted", "region_actions", "leaked")
	t.Note = "full east-region crash over the diurnal peak; dip/degraded: time with " +
		"smoothed goodput under 50% of the diurnal trough ('+' = still degraded at " +
		"run end); failover_ms: crash → west promoted; leaked must be 0"
	w, d := o.window(300*des.Millisecond, 3*des.Second)
	crash := w + des.Time(float64(d)*0.2)
	heal := w + des.Time(float64(d)*0.6)
	const base, amplitude = 800.0, 300.0
	trough := base - amplitude

	type result struct {
		rep        *sim.Report
		failoverMS string
		dip        des.Time
		dipPinned  bool
		degraded   des.Time
		pinned     bool
		actions    string
	}
	run := func(faulted, mitigated bool) (*result, error) {
		clientRetries := 8
		if mitigated {
			clientRetries = 1
		}
		s, err := regionLossScenario(o.Seed, w, d, crash, heal, base, amplitude, clientRetries)
		if err != nil {
			return nil, err
		}
		if !faulted {
			// Rebuild without the fault plan: same scenario, no outage.
			s, err = regionLossScenario(o.Seed, w, d, des.Time(math.MaxInt64), des.Time(math.MaxInt64),
				base, amplitude, clientRetries)
			if err != nil {
				return nil, err
			}
		}
		var plane *control.Plane
		if mitigated {
			if err := s.SetServicePolicy("store", fault.Policy{
				Timeout: 50 * des.Millisecond, MaxRetries: 1,
				BackoffBase: 20 * des.Millisecond, BackoffJitter: 0.5,
				Breaker: &fault.BreakerSpec{
					ErrorThreshold: 0.5, Window: 20, Cooldown: 100 * des.Millisecond,
				},
			}); err != nil {
				return nil, err
			}
			if err := s.SetQueueDiscipline("store", fault.QueueDiscipline{
				Kind: fault.QueueCoDelLIFO, Target: 5 * des.Millisecond,
			}); err != nil {
				return nil, err
			}
			plane, err = control.Attach(s, control.Config{
				Detector: &control.DetectorConfig{Period: 5 * des.Millisecond},
				RegionFailover: &control.RegionFailoverConfig{
					CheckInterval: 5 * des.Millisecond,
					DrainDelay:    20 * des.Millisecond,
				},
			})
			if err != nil {
				return nil, err
			}
		} else {
			// Naive spillover handling: a deep edge retry budget with
			// near-immediate re-offer on top of the client's own storm.
			if err := s.SetServicePolicy("store", fault.Policy{
				Timeout: 50 * des.Millisecond, MaxRetries: 6,
				BackoffBase: des.Millisecond, BackoffJitter: 0.5,
			}); err != nil {
				return nil, err
			}
		}
		gb := trackGoodput(s)
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, err
		}
		r := &result{rep: rep, failoverMS: "-", actions: "-"}
		if faulted {
			r.dip, r.dipPinned = gb.degradedAfter(crash, heal, trough)
			r.degraded, r.pinned = gb.degradedAfter(heal, w+d, trough)
		}
		if plane != nil {
			st := plane.Stats()
			r.actions = fmt.Sprintf("rloss=%d rfo=%d rrest=%d",
				st.RegionLosses, st.RegionFailovers, st.RegionRestores)
			dep, _ := s.Deployment("store")
			if at, ok := dep.PromotedAt("west"); ok {
				r.failoverMS = fmt.Sprintf("%.0f", (at - crash).Millis())
			}
			plane.Stop()
		}
		return r, nil
	}

	fmtDeg := func(v des.Time, pinned bool) string {
		out := fmt.Sprintf("%.0f", v.Millis())
		if pinned {
			out += "+"
		}
		return out
	}
	for _, c := range []struct {
		label              string
		faulted, mitigated bool
	}{
		{"mitigated-no-fault", false, true},
		{"naive-region-loss", true, false},
		{"mitigated-region-loss", true, true},
	} {
		r, err := run(c.faulted, c.mitigated)
		if err != nil {
			return nil, err
		}
		t.Add(c.label,
			fmt.Sprintf("%.0f", r.rep.GoodputQPS),
			fmt.Sprintf("%.3f", r.rep.Latency.P99().Millis()),
			r.failoverMS,
			fmtDeg(r.dip, r.dipPinned),
			fmtDeg(r.degraded, r.pinned),
			fmt.Sprintf("%d", r.rep.CrossRegionCalls),
			fmt.Sprintf("%d", r.rep.StaleReads),
			fmt.Sprintf("%d", r.rep.Retries),
			fmt.Sprintf("%d", r.rep.WastedWork),
			r.actions,
			fmt.Sprintf("%d", leaked(r.rep)))
	}
	return t, nil
}
