package experiments

import (
	"strings"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

func TestReportTables(t *testing.T) {
	s := sim.New(sim.Options{Seed: 2})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(100*des.Microsecond))),
		sim.RoundRobin, sim.Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(1000)})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	tables := ReportTables(rep)
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	sum, tiers, insts := tables[0], tables[1], tables[2]
	if len(sum.Rows) != 1 {
		t.Fatal("summary should have one row")
	}
	joined := sum.String()
	for _, col := range []string{"goodput_qps", "timeouts", "p99_ms"} {
		if !strings.Contains(joined, col) {
			t.Fatalf("summary missing %s:\n%s", col, joined)
		}
	}
	if len(tiers.Rows) != 1 || tiers.Rows[0][0] != "svc" {
		t.Fatalf("tier rows %v", tiers.Rows)
	}
	if len(insts.Rows) != 1 || insts.Rows[0][0] != "svc-0" {
		t.Fatalf("instance rows %v", insts.Rows)
	}
	// CSV renders without error and with matching row counts.
	if got := strings.Count(sum.CSV(), "\n"); got != 2 {
		t.Fatalf("summary csv lines %d", got)
	}
}

func TestReportTablesErrorBreakdown(t *testing.T) {
	s := sim.New(sim.Options{Seed: 2})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(100*des.Microsecond))),
		sim.RoundRobin, sim.Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(1000)})
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 300 * des.Millisecond, Kind: fault.KillInstance, Service: "svc", Instance: -1},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	tables := ReportTables(rep)
	if len(tables) != 4 {
		t.Fatalf("tables = %d, want errors table appended", len(tables))
	}
	errs := tables[3]
	if len(errs.Rows) != 1 || errs.Rows[0][0] != "svc" {
		t.Fatalf("error rows %v", errs.Rows)
	}
	if errs.Rows[0][3] == "0" {
		t.Fatalf("svc dropped column should be nonzero: %v", errs.Rows[0])
	}
}
