package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper table or figure.
type Runner func(Opts) (*Table, error)

// Registry maps experiment IDs to runners. IDs follow the paper's
// numbering plus the DESIGN.md ablations.
var Registry = map[string]Runner{
	"fig5":              Fig5TwoTier,
	"fig6":              Fig6ThreeTier,
	"fig8":              Fig8LoadBalancing,
	"fig10":             Fig10Fanout,
	"fig12a":            Fig12aThrift,
	"fig12b":            Fig12bSocialNetwork,
	"fig13":             Fig13BigHouse,
	"fig14":             Fig14TailAtScale,
	"fig15":             Fig15Diurnal,
	"fig16":             Fig16PowerTrace,
	"table3":            Table3PowerViolations,
	"ablation-batching": AblationNoBatching,
	"ablation-netproc":  AblationNoNetproc,
	"ablation-blocking": AblationNoBlocking,
	"ablation-lb":       AblationLBPolicies,
}

// Names lists registered experiment IDs in sorted order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, o Opts) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	return r(o)
}
