package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Demo", "a", "long_column", "c")
	tb.Note = "a note"
	tb.Add("1", "2", "3")
	tb.Add("wide-cell", "x", "y")
	s := tb.String()
	if !strings.Contains(s, "== Demo ==") || !strings.Contains(s, "a note") {
		t.Fatalf("missing title/note:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title, note, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("line count %d:\n%s", len(lines), s)
	}
	// Header and rows align: same prefix widths.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("separator not aligned with header:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.Add("1,5", `say "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	tb.Add("only-one")
}

func TestOptsScaling(t *testing.T) {
	o := Opts{Scale: 0}
	if o.scale() != 1 {
		t.Fatal("zero scale should clamp to 1")
	}
	o = Opts{Scale: 0.25}
	w, d := o.window(1000, 4000)
	// Clamped to floors.
	if w < 1 || d < 1 {
		t.Fatal("window must stay positive")
	}
	loads := o.thin([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if len(loads) < 2 || loads[0] != 1 || loads[len(loads)-1] != 8 {
		t.Fatalf("thinned %v must keep endpoints", loads)
	}
	full := Opts{Scale: 1}
	if got := full.thin([]float64{1, 2, 3}); len(got) != 3 {
		t.Fatal("scale 1 should not thin")
	}
}

func TestGrid(t *testing.T) {
	g := grid(10, 50, 10)
	if len(g) != 5 || g[0] != 10 || g[4] != 50 {
		t.Fatalf("grid %v", g)
	}
}

func TestRegistryNamesAndUnknown(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatal("names length")
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
	if _, err := Run("nope", Opts{}); err == nil {
		t.Fatal("unknown id should fail")
	}
}

// smoke runs an experiment at tiny scale and sanity-checks the table.
func smoke(t *testing.T, id string) *Table {
	t.Helper()
	tb, err := Run(id, Opts{Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s: no rows", id)
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("%s: ragged row %v", id, row)
		}
	}
	return tb
}

func TestResilienceSmoke(t *testing.T) {
	tb := smoke(t, "resilience")
	if len(tb.Rows) != 8 {
		t.Fatalf("rows %d, want 8 scenarios", len(tb.Rows))
	}
	leakCol := len(tb.Columns) - 1
	for _, r := range tb.Rows {
		if r[leakCol] != "0" {
			t.Fatalf("scenario %s/%s leaked %s requests", r[0], r[1], r[leakCol])
		}
	}
}

func TestOverloadSmoke(t *testing.T) {
	tb := smoke(t, "overload")
	leakCol := len(tb.Columns) - 1
	// goodput per config at the highest load (1.5×) and at the peak.
	at15 := map[string]float64{}
	peak := map[string]float64{}
	for _, r := range tb.Rows {
		if r[leakCol] != "0" {
			t.Fatalf("%s at %s× leaked %s requests", r[0], r[1], r[leakCol])
		}
		g, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatalf("unparseable goodput in %v", r)
		}
		if g > peak[r[0]] {
			peak[r[0]] = g
		}
		if r[1] == "1.50" {
			at15[r[0]] = g
		}
	}
	// The acceptance criterion: with deadlines + CoDel-LIFO (+ hedging),
	// goodput at 1.5× saturation stays within 2× of the config's peak,
	// while the FIFO baseline's backlog outgrows the client's patience
	// and goodput collapses.
	for _, cfg := range []string{"deadline-codel-lifo", "deadline-codel-lifo-hedge"} {
		if at15[cfg] < peak[cfg]/2 {
			t.Fatalf("%s: goodput %v at 1.5× vs peak %v — should degrade gracefully",
				cfg, at15[cfg], peak[cfg])
		}
	}
	if base := at15["fifo-baseline"]; base > at15["deadline-codel-lifo"]/4 {
		t.Fatalf("fifo-baseline goodput %v at 1.5× should collapse (graceful: %v)",
			base, at15["deadline-codel-lifo"])
	}
}

func TestFig5Smoke(t *testing.T) {
	tb := smoke(t, "fig5")
	// Four configurations appear.
	labels := map[string]bool{}
	for _, r := range tb.Rows {
		labels[r[0]] = true
	}
	if len(labels) != 4 {
		t.Fatalf("configs %v", labels)
	}
}

func TestFig6Smoke(t *testing.T)  { smoke(t, "fig6") }
func TestFig10Smoke(t *testing.T) { smoke(t, "fig10") }

func TestFig8Smoke(t *testing.T) {
	tb := smoke(t, "fig8")
	labels := map[string]bool{}
	for _, r := range tb.Rows {
		labels[r[0]] = true
	}
	for _, want := range []string{"scaleout-4", "scaleout-8", "scaleout-16"} {
		if !labels[want] {
			t.Fatalf("missing %s in %v", want, labels)
		}
	}
}

func TestFig12aSmoke(t *testing.T) { smoke(t, "fig12a") }
func TestFig12bSmoke(t *testing.T) { smoke(t, "fig12b") }

func TestFig13SmokeShowsBothSimulators(t *testing.T) {
	tb := smoke(t, "fig13")
	sims := map[string]bool{}
	for _, r := range tb.Rows {
		sims[r[1]] = true
	}
	if !sims["uqsim"] || !sims["bighouse"] {
		t.Fatalf("simulators %v", sims)
	}
}

func TestFig14SmokeAnalyticColumn(t *testing.T) {
	tb := smoke(t, "fig14")
	for _, r := range tb.Rows {
		if r[1] == "0.00" {
			// No slow servers: measured p99 should be within ~2× of
			// the analytic zero-load value.
			got, err1 := strconv.ParseFloat(r[2], 64)
			ref, err2 := strconv.ParseFloat(r[3], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("unparseable row %v", r)
			}
			if got < ref*0.5 || got > ref*2.5 {
				t.Fatalf("p99 %v vs analytic %v (row %v)", got, ref, r)
			}
		}
	}
}

func TestFig15Smoke(t *testing.T)  { smoke(t, "fig15") }
func TestFig16Smoke(t *testing.T)  { smoke(t, "fig16") }
func TestTable3Smoke(t *testing.T) { smoke(t, "table3") }

func TestAblationBatchingSmoke(t *testing.T) {
	tb := smoke(t, "ablation-batching")
	batched, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	unbatched, _ := strconv.ParseFloat(tb.Rows[1][1], 64)
	if batched <= unbatched {
		t.Fatalf("batching should raise capacity: %v vs %v", batched, unbatched)
	}
}

func TestAblationNetprocSmoke(t *testing.T) {
	tb := smoke(t, "ablation-netproc")
	// At 16 servers the netproc-less variant should have higher capacity.
	for _, r := range tb.Rows {
		if r[0] == "16" {
			with, _ := strconv.ParseFloat(r[1], 64)
			without, _ := strconv.ParseFloat(r[2], 64)
			if without <= with {
				t.Fatalf("16-way: netproc should bind capacity (%v vs %v)", with, without)
			}
		}
	}
}

func TestAblationBlockingSmoke(t *testing.T) {
	tb := smoke(t, "ablation-blocking")
	blockedInFlight, _ := strconv.Atoi(tb.Rows[0][3])
	openInFlight, _ := strconv.Atoi(tb.Rows[1][3])
	if openInFlight <= blockedInFlight {
		t.Fatalf("without pools in-flight should explode: %d vs %d",
			blockedInFlight, openInFlight)
	}
}

func TestAblationLBSmoke(t *testing.T) { smoke(t, "ablation-lb") }

func TestValidationSmoke(t *testing.T) {
	tb := smoke(t, "validation")
	fails := 0
	for _, r := range tb.Rows {
		if r[5] == "FAIL" {
			fails++
		}
	}
	// Short smoke windows are noisy; just ensure most checks pass.
	if fails > len(tb.Rows)/3 {
		t.Fatalf("%d of %d validation checks failed at smoke scale", fails, len(tb.Rows))
	}
}

func TestExtTimeoutsSmoke(t *testing.T) {
	tb := smoke(t, "ext-timeouts")
	// The timeout clients must record timeouts at the overloaded points.
	sawTimeouts := false
	for _, r := range tb.Rows {
		if r[0] != "patient" && r[4] != "0.0%" {
			sawTimeouts = true
		}
		if r[0] == "patient" && r[4] != "0.0%" {
			t.Fatalf("patient client cannot time out: %v", r)
		}
	}
	if !sawTimeouts {
		t.Fatal("timeout clients never timed out under overload")
	}
}

func TestScalabilitySmoke(t *testing.T) {
	tb := smoke(t, "scalability")
	if len(tb.Rows) < 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	engines := map[string]bool{}
	for _, r := range tb.Rows {
		engines[r[1]] = true
		if r[5] == "0" {
			t.Fatalf("zero events in %v", r)
		}
		if r[1] == "pdes" && r[2] == "1" && r[8] != "1.00" {
			t.Fatalf("workers=1 baseline speedup %q in %v", r[8], r)
		}
		if r[1] == "pdes" && r[2] != "1" {
			if _, err := strconv.ParseFloat(r[8], 64); err != nil {
				t.Fatalf("unparseable speedup %q in %v", r[8], r)
			}
		}
	}
	if !engines["sim"] || !engines["pdes"] {
		t.Fatalf("missing engine series: %v", engines)
	}
}

func TestExtCacheSmoke(t *testing.T) {
	tb := smoke(t, "ext-cache")
	prev := -1.0
	for _, r := range tb.Rows {
		hit, err := strconv.ParseFloat(r[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if hit < prev-0.02 {
			t.Fatalf("hit ratio should grow with cache size: %v", tb.Rows)
		}
		prev = hit
	}
}

func TestSelfHealingSmoke(t *testing.T) {
	tb := smoke(t, "selfhealing")
	if len(tb.Rows) != 7 {
		t.Fatalf("rows %d, want 7", len(tb.Rows))
	}
	leakCol := len(tb.Columns) - 1
	cells := map[string][]string{}
	for _, r := range tb.Rows {
		if r[leakCol] != "0" {
			t.Fatalf("%s/%s leaked %s requests", r[0], r[1], r[leakCol])
		}
		cells[r[0]+"/"+r[1]] = r
	}
	// (a) the baseline never regains 90% goodput; failover does, fast.
	if got := cells["a:instance-crash/no-control"][4]; got != "-" {
		t.Fatalf("baseline recovered (mttr %s) without a control plane", got)
	}
	mttr, err := strconv.ParseFloat(cells["a:instance-crash/detect+failover"][4], 64)
	if err != nil || mttr <= 0 || mttr > 500 {
		t.Fatalf("failover mttr %q, want bounded positive ms", cells["a:instance-crash/detect+failover"][4])
	}
	if !strings.Contains(cells["a:instance-crash/detect+failover"][5], "fo=1") {
		t.Fatalf("failover actions %q", cells["a:instance-crash/detect+failover"][5])
	}
	// (b) ejection must cut the gray-failure p99.
	baseP99, _ := strconv.ParseFloat(cells["b:gray-failure/no-control"][3], 64)
	ejP99, _ := strconv.ParseFloat(cells["b:gray-failure/outlier-ejection"][3], 64)
	if ejP99 <= 0 || ejP99 >= baseP99 {
		t.Fatalf("ejection p99 %.3fms did not improve on baseline %.3fms", ejP99, baseP99)
	}
	// (c) the autoscaler must act on the load step.
	if !strings.Contains(cells["c:load-step/autoscale-max-3"][5], "up=") ||
		strings.Contains(cells["c:load-step/autoscale-max-3"][5], "up=0") {
		t.Fatalf("autoscale actions %q", cells["c:load-step/autoscale-max-3"][5])
	}
	// (d) identical rerun.
	if got := cells["d:determinism/failover-rerun"][5]; got != "stable" {
		t.Fatalf("determinism verdict %q", got)
	}
}

func TestChaosSmoke(t *testing.T) {
	tb := smoke(t, "chaos")
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d, want find/shrink/replay", len(tb.Rows))
	}
	if tb.Rows[0][2] != "recovery-goodput" {
		t.Fatalf("find step violated %q, want recovery-goodput", tb.Rows[0][2])
	}
	if tb.Rows[1][3] != "partition m0|m1 (the killer)" {
		t.Fatalf("shrink kept %q, want just the partition", tb.Rows[1][3])
	}
	if tb.Rows[2][3] != "fingerprint reproduces bit-identically" {
		t.Fatalf("replay: %q", tb.Rows[2][3])
	}
}

func TestHybridFaultSmoke(t *testing.T) {
	tb := smoke(t, "hybridfault")
	// during(full,hybrid) + after(full,hybrid) + equiv + attrib + chaos.
	if len(tb.Rows) != 7 {
		t.Fatalf("rows %d, want 7", len(tb.Rows))
	}
	leakCol := len(tb.Columns) - 1
	rows := map[string][]string{}
	for _, r := range tb.Rows {
		if r[leakCol] != "0" {
			t.Fatalf("%s/%s leaked %s requests", r[0], r[1], r[leakCol])
		}
		rows[r[0]+"/"+r[1]] = r
	}
	// Attribution must carry the full fault vocabulary even at smoke scale
	// (the runner already enforces nonzero buckets and the exact sum).
	attr := rows["attrib/hybrid"][10]
	for _, cause := range []string{"degrade_freq", "partition", "gray_link"} {
		if !strings.Contains(attr, cause+":") {
			t.Fatalf("attribution %q missing %s", attr, cause)
		}
	}
	if got := rows["chaos/hybrid"][8]; got != "pass" {
		t.Fatalf("hybrid chaos search verdict %q", got)
	}
}

func TestMillionUserSmoke(t *testing.T) {
	tb := smoke(t, "millionuser")
	// 3×(full,hybrid) + unit-rate equivalence + million-user scale row.
	if len(tb.Rows) != 8 {
		t.Fatalf("rows %d, want 8", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("leak column %v", row)
		}
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[11] == "-" {
		t.Fatalf("scale row missing speedup: %v", last)
	}
}
