package experiments

import (
	"fmt"

	"uqsim/internal/analytic"
	"uqsim/internal/apps"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/sim"
)

// Fig5TwoTier regenerates the two-tier NGINX→memcached validation: one
// load–latency curve per thread/process configuration. The paper's
// qualitative results: the saturation point is set by the NGINX process
// count; extra memcached threads do not move it.
func Fig5TwoTier(o Opts) (*Table, error) {
	t := NewTable("Fig. 5 — two-tier NGINX/memcached load–latency", curveColumns()...)
	t.Note = "paper: saturation tracks NGINX processes (8p ≈ 2× 4p); memcached threads don't matter"
	configs := []struct {
		label  string
		nginx  int
		mc     int
		maxQPS float64
	}{
		{"nginx8p-mc4t", 8, 4, 80000},
		{"nginx8p-mc2t", 8, 2, 80000},
		{"nginx4p-mc2t", 4, 2, 45000},
		{"nginx4p-mc1t", 4, 1, 45000},
	}
	for _, c := range configs {
		c := c
		pts, err := sweep(o, func(qps float64) (*sim.Sim, error) {
			return apps.TwoTier(apps.TwoTierConfig{
				Seed: o.Seed, QPS: qps,
				NginxCores: c.nginx, MemcachedThreads: c.mc, Network: true,
			})
		}, grid(c.maxQPS/8, c.maxQPS, c.maxQPS/8), 300*des.Millisecond, des.Second)
		if err != nil {
			return nil, err
		}
		addCurve(t, c.label, pts)
	}
	return t, nil
}

// Fig6ThreeTier regenerates the three-tier validation: MongoDB's disk
// bandwidth bounds throughput, latencies are millisecond-scale.
func Fig6ThreeTier(o Opts) (*Table, error) {
	t := NewTable("Fig. 6 — three-tier NGINX/memcached/MongoDB load–latency", curveColumns()...)
	t.Note = "paper: disk I/O bound; scaling the other tiers does not help"
	pts, err := sweep(o, func(qps float64) (*sim.Sim, error) {
		return apps.ThreeTier(apps.ThreeTierConfig{Seed: o.Seed, QPS: qps, Network: true})
	}, grid(250, 2750, 250), 300*des.Millisecond, 2*des.Second)
	if err != nil {
		return nil, err
	}
	addCurve(t, "nginx8p-mc2t-mongo", pts)
	return t, nil
}

// Fig8LoadBalancing regenerates the load-balancing validation: saturation
// 35k → 70k → ~120k QPS for 4 → 8 → 16 webservers (sub-linear at 16, when
// the proxy machine's interrupt cores saturate).
func Fig8LoadBalancing(o Opts) (*Table, error) {
	t := NewTable("Fig. 8 — NGINX load balancing (p99 vs load)", curveColumns()...)
	t.Note = "paper: 35k/70k QPS for 4/8 servers, ~120k for 16 (soft_irq bound)"
	for _, n := range []int{4, 8, 16} {
		n := n
		maxQPS := float64(n) * 11000
		if maxQPS > 145000 {
			maxQPS = 145000
		}
		pts, err := sweep(o, func(qps float64) (*sim.Sim, error) {
			return apps.LoadBalanced(apps.ScaleOutConfig{Seed: o.Seed, QPS: qps, Servers: n})
		}, grid(maxQPS/8, maxQPS, maxQPS/8), 300*des.Millisecond, des.Second)
		if err != nil {
			return nil, err
		}
		addCurve(t, fmt.Sprintf("scaleout-%d", n), pts)
	}
	return t, nil
}

// Fig10Fanout regenerates the fanout validation: all leaves serve every
// request; saturation decreases slightly with width while the p99 knee
// sharpens.
func Fig10Fanout(o Opts) (*Table, error) {
	t := NewTable("Fig. 10 — NGINX request fanout (p99 vs load)", curveColumns()...)
	t.Note = "paper: saturation decreases slightly as fanout grows"
	for _, n := range []int{4, 8, 16} {
		n := n
		pts, err := sweep(o, func(qps float64) (*sim.Sim, error) {
			return apps.Fanout(apps.ScaleOutConfig{Seed: o.Seed, QPS: qps, Servers: n})
		}, grid(1500, 10500, 1500), 300*des.Millisecond, des.Second)
		if err != nil {
			return nil, err
		}
		addCurve(t, fmt.Sprintf("fanout-%d", n), pts)
	}
	return t, nil
}

// Fig12aThrift regenerates the Apache Thrift RPC validation: low-load
// latency under 100µs, saturation just above 50 kQPS.
func Fig12aThrift(o Opts) (*Table, error) {
	t := NewTable("Fig. 12a — Thrift hello-world RPC", curveColumns()...)
	t.Note = "paper: <100µs at low load, saturation ≈50 kQPS"
	pts, err := sweep(o, func(qps float64) (*sim.Sim, error) {
		return apps.ThriftHello(apps.ThriftHelloConfig{Seed: o.Seed, QPS: qps, Network: true})
	}, grid(5000, 65000, 5000), 300*des.Millisecond, des.Second)
	if err != nil {
		return nil, err
	}
	addCurve(t, "thrift-1core", pts)
	return t, nil
}

// Fig12bSocialNetwork regenerates the end-to-end Social Network
// validation.
func Fig12bSocialNetwork(o Opts) (*Table, error) {
	t := NewTable("Fig. 12b — Social Network end-to-end", curveColumns()...)
	t.Note = "paper: close latency match at low load, same saturation throughput"
	pts, err := sweep(o, func(qps float64) (*sim.Sim, error) {
		return apps.SocialNetwork(apps.SocialNetworkConfig{Seed: o.Seed, QPS: qps, Network: true})
	}, grid(500, 6000, 500), 300*des.Millisecond, des.Second)
	if err != nil {
		return nil, err
	}
	addCurve(t, "socialnet", pts)
	return t, nil
}

// Fig14TailAtScale regenerates the tail-at-scale study: p99 of a full
// cluster fan-out versus cluster size, for several fractions of 10×-slow
// servers, alongside the closed-form zero-load reference.
func Fig14TailAtScale(o Opts) (*Table, error) {
	t := NewTable("Fig. 14 — tail at scale",
		"servers", "slow_frac", "p99_ms", "analytic_p99_ms", "slow_touch_prob")
	t.Note = "paper: ≥1% slow servers dominate p99 for clusters ≥100 (Dean & Barroso)"
	clusters := []int{5, 10, 50, 100, 500, 1000}
	if o.scale() < 0.5 {
		clusters = []int{5, 50, 200}
	}
	const qps = 25.0 // keep slow leaves at ρ=0.25 so the tail is the
	// slow-machine effect, not queueing
	for _, n := range clusters {
		for _, slow := range []float64{0, 0.01, 0.05, 0.10} {
			s, err := apps.TailAtScale(apps.TailAtScaleConfig{
				Seed: o.Seed, QPS: qps, Servers: n, SlowFraction: slow,
			})
			if err != nil {
				return nil, err
			}
			_, d := o.window(0, 40*des.Second)
			rep, err := s.Run(0, d)
			if err != nil {
				return nil, err
			}
			if err := checkConservation(rep); err != nil {
				return nil, err
			}
			cdf := analytic.MixtureExpCDF(slow, 1, 10) // ms units
			ref := analytic.FanoutQuantileOfMax(n, 0.99, 0, 1000, cdf)
			t.Add(
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2f", slow),
				fmt.Sprintf("%.2f", rep.Latency.P99().Millis()),
				fmt.Sprintf("%.2f", ref),
				fmt.Sprintf("%.3f", analytic.TailAtScaleSlowProb(slow, n)),
			)
		}
	}
	return t, nil
}

// Fig13BigHouse regenerates the µqSim-vs-BigHouse comparison for the
// single-process NGINX webserver and the 4-thread memcached: BigHouse
// charges the full epoll cost to every request, so it saturates earlier.
func Fig13BigHouse(o Opts) (*Table, error) {
	t := NewTable("Fig. 13 — µqSim vs BigHouse",
		"app", "simulator", "offered_qps", "goodput_qps", "p99_ms")
	t.Note = "paper: BigHouse saturates early because epoll cost is not amortized"
	w, d := o.window(300*des.Millisecond, des.Second)

	type appCase struct {
		label  string
		bp     string // "nginx" or "memcached"
		path   string
		cores  int
		loads  []float64
		sizeKB dist.Sampler
		meanKB float64
	}
	cases := []appCase{
		{"nginx-1p", "nginx", "serve", 1, grid(2000, 11000, 1500),
			dist.NewDeterministic(612.0 / 1024), 612.0 / 1024},
		{"memcached-4t", "memcached", "memcached_read", 4, grid(100000, 1000000, 100000),
			dist.NewExponential(1), 1},
	}
	for _, c := range cases {
		bp := apps.Nginx()
		if c.bp == "memcached" {
			bp = apps.Memcached()
		}
		pathIdx := 0
		for i, p := range bp.Paths {
			if p.Name == c.path {
				pathIdx = i
			}
		}
		// µqSim: full stage model.
		for _, qps := range o.thin(c.loads) {
			s, err := apps.SingleService(bp, c.path, c.cores, qps, o.Seed, c.sizeKB)
			if err != nil {
				return nil, err
			}
			rep, err := s.Run(w, d)
			if err != nil {
				return nil, err
			}
			if err := checkConservation(rep); err != nil {
				return nil, err
			}
			t.Add(c.label, "uqsim",
				fmt.Sprintf("%.0f", qps),
				fmt.Sprintf("%.0f", rep.GoodputQPS),
				fmt.Sprintf("%.3f", rep.Latency.P99().Millis()))
		}
		// BigHouse: single-stage collapse.
		svc := bhCollapse(bp, pathIdx, c.meanKB)
		for _, qps := range o.thin(c.loads) {
			res, err := bhRun(o.Seed, c.cores, svc, qps, w, d)
			if err != nil {
				return nil, err
			}
			t.Add(c.label, "bighouse",
				fmt.Sprintf("%.0f", qps),
				fmt.Sprintf("%.0f", res.goodput),
				fmt.Sprintf("%.3f", res.p99.Millis()))
		}
	}
	return t, nil
}
