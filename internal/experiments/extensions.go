package experiments

import (
	"fmt"

	"uqsim/internal/apps"
	"uqsim/internal/cache"
	"uqsim/internal/des"
)

// cacheZipf builds the popularity model used for the analytic ceiling
// column of the emergent-cache experiment.
func cacheZipf(n int, s float64) *cache.Zipf { return cache.NewZipf(n, s) }

// ExtTimeouts demonstrates the timeout/retry extension — behaviour the
// paper explicitly notes its simulator lacks ("the simulator does not
// capture timeouts and the associated overhead of reconnections, which can
// cause the real system's latency to increase rapidly", §IV-C). With
// client timeouts and retries enabled, the saturated region degrades the
// way the real Thrift measurements did: observed latency pins at the
// patience bound and retries amplify the overload.
func ExtTimeouts(o Opts) (*Table, error) {
	t := NewTable("Extension — client timeouts and retry amplification",
		"client", "offered_qps", "effective_qps", "goodput_qps", "timeout_rate", "p99_ms")
	t.Note = "models the post-saturation cliff the paper attributes to timeouts/reconnections"
	w, d := o.window(300*des.Millisecond, des.Second)
	loads := o.thin(grid(40000, 70000, 10000))
	for _, c := range []struct {
		label   string
		timeout des.Time
		retries int
	}{
		{"patient", 0, 0},
		{"timeout-5ms", 5 * des.Millisecond, 0},
		{"timeout-5ms+2retries", 5 * des.Millisecond, 2},
	} {
		for _, qps := range loads {
			s, err := apps.ThriftHello(apps.ThriftHelloConfig{Seed: o.Seed, QPS: qps, Network: true})
			if err != nil {
				return nil, err
			}
			cc := s.Client()
			cc.Timeout = c.timeout
			cc.MaxRetries = c.retries
			s.SetClient(cc)
			rep, err := s.Run(w, d)
			if err != nil {
				return nil, err
			}
			if err := checkConservation(rep); err != nil {
				return nil, err
			}
			rate := 0.0
			attempts := rep.Completions + rep.Timeouts
			if attempts > 0 {
				rate = float64(rep.Timeouts) / float64(attempts)
			}
			t.Add(c.label,
				fmt.Sprintf("%.0f", qps),
				fmt.Sprintf("%.0f", rep.OfferedQPS),
				fmt.Sprintf("%.0f", rep.GoodputQPS),
				fmt.Sprintf("%.1f%%", 100*rate),
				fmt.Sprintf("%.3f", rep.Latency.P99().Millis()))
		}
	}
	return t, nil
}

func init() {
	Registry["ext-timeouts"] = ExtTimeouts
	Registry["ext-cache"] = ExtEmergentCache
}

// ExtEmergentCache sweeps LRU cache sizes in the emergent-cache two-tier
// scenario: the hit ratio (and therefore disk traffic and the latency
// distribution) emerges from cache capacity and Zipf key popularity
// instead of being a fixed model input, with the Zipf top-k mass as the
// analytic ceiling.
func ExtEmergentCache(o Opts) (*Table, error) {
	t := NewTable("Extension — emergent LRU cache hit ratio",
		"cache_items", "hit_ratio", "zipf_topk_mass", "mean_ms", "p99_ms", "mongo_share")
	t.Note = "hit probability derived from LRU+Zipf dynamics, not configured"
	w, d := o.window(300*des.Millisecond, 3*des.Second)
	const keys = 100000
	zipf := cacheZipf(keys, 0.99)
	for _, items := range []int{1000, 5000, 20000, 50000} {
		s, lru, err := apps.CachedTwoTier(apps.CachedTwoTierConfig{
			Seed: o.Seed, QPS: 800, Keys: keys, CacheItems: items, Network: true,
		})
		if err != nil {
			return nil, err
		}
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, err
		}
		mongoShare := 0.0
		if h := rep.PerTier["mongodb"]; h != nil && rep.Completions > 0 {
			mongoShare = float64(h.Count()) / float64(rep.Completions)
		}
		t.Add(
			fmt.Sprintf("%d", items),
			fmt.Sprintf("%.3f", lru.HitRatio()),
			fmt.Sprintf("%.3f", zipf.PopularMass(items)),
			fmt.Sprintf("%.3f", rep.Latency.Mean().Millis()),
			fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
			fmt.Sprintf("%.3f", mongoShare),
		)
	}
	return t, nil
}
