package experiments

import (
	"fmt"

	"uqsim/internal/cluster"
	"uqsim/internal/control"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/job"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

func init() {
	Registry["selfhealing"] = SelfHealing
}

// selfHealScenario builds one service with exponential 1ms request cost,
// one instance per machine, driven open-loop at qps.
func selfHealScenario(seed uint64, qps float64, freq cluster.FreqSpec,
	nMachines, machineCores, instCores int) (*sim.Sim, error) {
	s := sim.New(sim.Options{Seed: seed})
	placements := make([]sim.Placement, 0, nMachines)
	for i := 0; i < nMachines; i++ {
		m := fmt.Sprintf("m%d", i)
		s.AddMachine(m, machineCores, freq)
		placements = append(placements, sim.Placement{Machine: m, Cores: instCores})
	}
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewExponential(float64(des.Millisecond))),
		sim.RoundRobin, placements...); err != nil {
		return nil, err
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(qps)})
	return s, nil
}

// mttrBin is the goodput binning granularity for MTTR measurement.
const mttrBin = 10 * des.Millisecond

// goodputBins counts successful completions per fixed virtual-time bin.
type goodputBins struct{ counts []int }

// trackGoodput hooks completion counting into a simulation.
func trackGoodput(s *sim.Sim) *goodputBins {
	gb := &goodputBins{}
	s.OnRequestDone = func(now des.Time, req *job.Request) {
		if req.Outcome != job.OutcomeOK {
			return
		}
		i := int(now / mttrBin)
		for len(gb.counts) <= i {
			gb.counts = append(gb.counts, 0)
		}
		gb.counts[i]++
	}
	return gb
}

// mttr is the recovery time after a fault at kill: the first bin from the
// kill onward whose forward 5-bin mean goodput reaches 90% of the offered
// load (which pre-fault goodput tracks, since the scenario runs below
// capacity). -1 means the run never recovered.
func (gb *goodputBins) mttr(kill des.Time, offeredQPS float64) des.Time {
	kb := int(kill / mttrBin)
	if kb > len(gb.counts) {
		return -1
	}
	threshold := 0.9 * offeredQPS * mttrBin.Seconds()
	const fw = 5
	for i := kb; i+fw <= len(gb.counts); i++ {
		sum := 0
		for _, c := range gb.counts[i : i+fw] {
			sum += c
		}
		if float64(sum)/fw >= threshold {
			m := des.Time(i)*mttrBin - kill
			if m < 0 {
				m = 0
			}
			return m
		}
	}
	return -1
}

// fmtMTTR renders an MTTR value, "-" for never-recovered.
func fmtMTTR(m des.Time) string {
	if m < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", m.Millis())
}

// actions flattens a control plane's action counters, "-" without a plane.
func actions(st *control.Stats) string {
	if st == nil {
		return "-"
	}
	return fmt.Sprintf("det=%d fo=%d ej=%d up=%d down=%d",
		st.Detections, st.Failovers, st.Ejections, st.ScaleUps, st.ScaleDowns)
}

// SelfHealing demonstrates the control plane closing the detect→decide→act
// loop:
// (a) an unrecovered instance crash at 70% load — without control the
// survivor stays saturated for the rest of the run; with heartbeat
// detection + failover a replacement restores capacity within a bounded
// MTTR (detection lag + restart delay);
// (b) gray failure — a frequency-degraded instance keeps its full
// round-robin share and drags the p99 until outlier ejection removes it
// from rotation;
// (c) a 4× load step against a reactive autoscaler — replicas follow the
// load up where a fixed deployment collapses;
// (d) determinism — an identical rerun of (a) must reproduce the report
// and every control action exactly.
func SelfHealing(o Opts) (*Table, error) {
	t := NewTable("Self-healing — failure detection, failover, ejection, autoscaling",
		"part", "scenario", "goodput_qps", "p99_ms", "mttr_ms", "actions", "leaked")
	t.Note = "mttr: time to regain 90% of offered load; leaked must be 0"
	w, d := o.window(300*des.Millisecond, 2*des.Second)

	addRow := func(part, scenario string, rep *sim.Report, mttr des.Time, st *control.Stats) {
		t.Add(part, scenario,
			fmt.Sprintf("%.0f", rep.GoodputQPS),
			fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
			fmtMTTR(mttr),
			actions(st),
			fmt.Sprintf("%d", leaked(rep)))
	}

	// (a) Instance crash without recovery: two machines, one instance
	// each (1 core ≈ 1000 QPS capacity), 1600 QPS offered. The kill
	// halves capacity; only failover brings it back.
	kill := w + des.Time(float64(d)*0.3)
	detector := &control.DetectorConfig{Period: 5 * des.Millisecond}
	failover := &control.FailoverConfig{RestartDelay: 20 * des.Millisecond}
	runCrash := func(heal bool) (*sim.Report, des.Time, *control.Stats, error) {
		s, err := selfHealScenario(o.Seed, 1600, cluster.FreqSpec{}, 2, 2, 1)
		if err != nil {
			return nil, 0, nil, err
		}
		if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
			{At: kill, Kind: fault.KillInstance, Service: "svc", Instance: 0},
		}}); err != nil {
			return nil, 0, nil, err
		}
		var plane *control.Plane
		if heal {
			plane, err = control.Attach(s, control.Config{Detector: detector, Failover: failover})
			if err != nil {
				return nil, 0, nil, err
			}
		}
		gb := trackGoodput(s)
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, 0, nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, 0, nil, err
		}
		var st *control.Stats
		if plane != nil {
			st = plane.Stats()
			plane.Stop()
		}
		return rep, gb.mttr(kill, 1600), st, nil
	}
	repBase, mttrBase, _, err := runCrash(false)
	if err != nil {
		return nil, err
	}
	addRow("a:instance-crash", "no-control", repBase, mttrBase, nil)
	repHeal, mttrHeal, stHeal, err := runCrash(true)
	if err != nil {
		return nil, err
	}
	addRow("a:instance-crash", "detect+failover", repHeal, mttrHeal, stHeal)

	// (b) Gray failure: two 2-core instances, one on a machine degraded
	// to its minimum frequency from the start. Round-robin keeps feeding
	// it half the traffic; ejection moves the traffic to the healthy one.
	runGray := func(eject bool) (*sim.Report, *control.Stats, error) {
		s, err := selfHealScenario(o.Seed, 1200, cluster.DefaultFreqSpec, 2, 2, 2)
		if err != nil {
			return nil, nil, err
		}
		if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
			{At: 0, Kind: fault.DegradeFreq, Machine: "m1", FreqMHz: cluster.DefaultFreqSpec.MinMHz},
		}}); err != nil {
			return nil, nil, err
		}
		var plane *control.Plane
		if eject {
			plane, err = control.Attach(s, control.Config{Ejection: &control.EjectionConfig{
				Interval:  50 * des.Millisecond,
				Probation: des.Second,
			}})
			if err != nil {
				return nil, nil, err
			}
			s.OnCallResult = plane.ObserveCall
		}
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, nil, err
		}
		var st *control.Stats
		if plane != nil {
			st = plane.Stats()
			plane.Stop()
		}
		return rep, st, nil
	}
	repGray, _, err := runGray(false)
	if err != nil {
		return nil, err
	}
	addRow("b:gray-failure", "no-control", repGray, -1, nil)
	repEject, stEject, err := runGray(true)
	if err != nil {
		return nil, err
	}
	addRow("b:gray-failure", "outlier-ejection", repEject, -1, stEject)

	// (c) Load step: one 1-core instance, 400→1600 QPS at 30% of the
	// window. Fixed deployment saturates; the autoscaler follows the step.
	step := w + des.Time(float64(d)*0.3)
	runStep := func(scale bool) (*sim.Report, *control.Stats, error) {
		s, err := selfHealScenario(o.Seed, 0, cluster.FreqSpec{}, 1, 4, 1)
		if err != nil {
			return nil, nil, err
		}
		cc := s.Client()
		cc.Pattern = stepPattern{before: 400, after: 1600, at: step}
		s.SetClient(cc)
		var plane *control.Plane
		if scale {
			plane, err = control.Attach(s, control.Config{Autoscale: []control.AutoscaleConfig{{
				Service: "svc", Min: 1, Max: 3,
				TargetUtilization: 0.6,
				Interval:          50 * des.Millisecond,
			}}})
			if err != nil {
				return nil, nil, err
			}
		}
		rep, err := s.Run(w, d)
		if err != nil {
			return nil, nil, err
		}
		if err := checkConservation(rep); err != nil {
			return nil, nil, err
		}
		var st *control.Stats
		if plane != nil {
			st = plane.Stats()
			plane.Stop()
		}
		return rep, st, nil
	}
	repFixed, _, err := runStep(false)
	if err != nil {
		return nil, err
	}
	addRow("c:load-step", "fixed-1-replica", repFixed, -1, nil)
	repScale, stScale, err := runStep(true)
	if err != nil {
		return nil, err
	}
	addRow("c:load-step", "autoscale-max-3", repScale, -1, stScale)

	// (d) Determinism: rerunning (a) with control must reproduce the
	// report and every control action bit for bit.
	rep2, mttr2, st2, err := runCrash(true)
	if err != nil {
		return nil, err
	}
	fp := func(rep *sim.Report, m des.Time, st *control.Stats) string {
		return fmt.Sprintf("%.3f/%v/%v/%s", rep.GoodputQPS, rep.Latency.P99(), m, st.Fingerprint())
	}
	verdict := "stable"
	if fp(repHeal, mttrHeal, stHeal) != fp(rep2, mttr2, st2) {
		verdict = "DIVERGED"
	}
	t.Add("d:determinism", "failover-rerun", "-", "-", "-", verdict,
		fmt.Sprintf("%d", leaked(rep2)))
	return t, nil
}

// stepPattern is a one-step open-loop rate: before until at, after then.
type stepPattern struct {
	before, after float64
	at            des.Time
}

// RateAt implements workload.Pattern.
func (p stepPattern) RateAt(t des.Time) float64 {
	if t < p.at {
		return p.before
	}
	return p.after
}
