package experiments

import (
	"fmt"
	"math"
	"time"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/hybrid"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/validate"
	"uqsim/internal/workload"
)

// MillionUser validates the hybrid-fidelity engine end to end:
//
//   - Accuracy: at rho ∈ {0.3, 0.6, 0.8} a session population is run at
//     full DES fidelity and again with only a sampled fraction simulated
//     (the rest fluid background load). The sampled p50/p99 must land
//     within the quantile confidence bounds of the full run.
//   - Equivalence: a hybrid configuration at sample rate 1.0 must produce
//     a bit-identical fingerprint to a run with no hybrid engine at all.
//   - Scale: a million-user population at a proportionally scaled
//     deployment must simulate at least 100× more user-seconds per
//     wall-clock second than the full-DES baseline.
//
// Every cell asserts both conservation identities: the sampled foreground
// buckets and the fluid tier's background arrivals == completions + shed.
func MillionUser(o Opts) (*Table, error) {
	t := NewTable("Million-user — hybrid fidelity accuracy and scale",
		"rho", "fidelity", "users", "sample_rate", "goodput_qps",
		"p50_ms", "p99_ms", "p50_err_pct", "p99_err_pct", "within_ci",
		"users_per_wall_s", "speedup_x", "bg_arrivals", "leaked")
	t.Note = "within_ci gates sampled quantiles against the full run's confidence bounds;\n" +
		"speedup_x is simulated user-seconds per wall-clock second vs the rho=0.6 full run;\n" +
		"leaked must be 0 and covers both foreground and background conservation"

	const (
		meanServiceS = 0.010 // 10ms exponential service
		thinkS       = 1.0   // 1s exponential think per step
		cores        = 4
	)
	warm, dur := o.window(2*des.Second, 20*des.Second)
	sampleRate := 0.1
	fullScale := o.scale() >= 0.9

	type cell struct {
		rep  *sim.Report
		wall time.Duration
	}
	run := func(users, k int, hc *hybrid.Config) (*cell, error) {
		s, err := millionUserSim(o.Seed, users, k, meanServiceS, thinkS, hc)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := s.Run(warm, dur)
		if err != nil {
			return nil, err
		}
		return &cell{rep: rep, wall: time.Since(start)}, nil
	}
	// users-per-wall-second: population × simulated seconds / wall seconds.
	upws := func(users int, c *cell) float64 {
		return float64(users) * dur.Seconds() / c.wall.Seconds()
	}
	addRow := func(rho float64, fid string, users int, rate float64, c *cell,
		errP50, errP99 float64, withCI string, speedup string) error {
		if err := checkConservation(c.rep); err != nil {
			return fmt.Errorf("millionuser rho=%.1f %s: %w", rho, fid, err)
		}
		fmtErr := func(e float64) string {
			if e < 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", 100*e)
		}
		t.Add(
			fmt.Sprintf("%.1f", rho), fid,
			fmt.Sprintf("%d", users),
			fmt.Sprintf("%.4g", rate),
			fmt.Sprintf("%.0f", c.rep.GoodputQPS),
			fmt.Sprintf("%.3f", c.rep.Latency.P50().Millis()),
			fmt.Sprintf("%.3f", c.rep.Latency.P99().Millis()),
			fmtErr(errP50), fmtErr(errP99), withCI,
			fmt.Sprintf("%.0f", upws(users, c)),
			speedup,
			fmt.Sprintf("%d", c.rep.BackgroundArrivals),
			"0",
		)
		return nil
	}

	// Accuracy grid: rho = N·E[S] / (k·(Z+E[S])) ⇒ N = rho·k·(Z+E[S])/E[S].
	var fullAt06 *cell
	var users06 int
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		users := int(math.Round(rho * cores * (thinkS + meanServiceS) / meanServiceS))
		full, err := run(users, cores, nil)
		if err != nil {
			return nil, err
		}
		if err := addRow(rho, "full", users, 1, full, -1, -1, "-", "-"); err != nil {
			return nil, err
		}
		hyb, err := run(users, cores, &hybrid.Config{SampleRate: sampleRate})
		if err != nil {
			return nil, err
		}
		if rho == 0.6 {
			fullAt06, users06 = full, users
		}
		// The sampled run sees ~rate× fewer foreground requests; gate its
		// quantiles with a sampling-aware confidence band around the full
		// run's: 10% systematic headroom (the fluid M/M/k open-queue
		// approximation of a finite closed population) plus the quantile
		// standard error at the smaller sample count.
		n := math.Max(1, float64(hyb.rep.Completions))
		tol50 := 0.10 + 2/math.Sqrt(n)
		tol99 := 0.20 + 6/math.Sqrt(n)
		e50 := relErr(hyb.rep.Latency.P50().Seconds(), full.rep.Latency.P50().Seconds())
		e99 := relErr(hyb.rep.Latency.P99().Seconds(), full.rep.Latency.P99().Seconds())
		within := "yes"
		if e50 > tol50 || e99 > tol99 {
			within = "no"
			if fullScale {
				return nil, fmt.Errorf("millionuser rho=%.1f: sampled quantiles outside CI bounds "+
					"(p50 err %.1f%% tol %.1f%%, p99 err %.1f%% tol %.1f%%)",
					rho, 100*e50, 100*tol50, 100*e99, 100*tol99)
			}
		}
		if err := addRow(rho, "hybrid", users, sampleRate, hyb, e50, e99, within, "-"); err != nil {
			return nil, err
		}
	}

	// Equivalence: sample rate 1.0 is bit-identical to no hybrid at all.
	plain, err := run(users06, cores, nil)
	if err != nil {
		return nil, err
	}
	unit, err := run(users06, cores, &hybrid.Config{SampleRate: 1})
	if err != nil {
		return nil, err
	}
	if validate.Fingerprint(plain.rep) != validate.Fingerprint(unit.rep) {
		return nil, fmt.Errorf("millionuser: sample rate 1.0 fingerprint diverged from full DES")
	}
	if err := addRow(0.6, "hybrid-unit", users06, 1, unit, 0, 0, "yes", "-"); err != nil {
		return nil, err
	}

	// Scale: a million users on a proportionally scaled deployment, with
	// the sample rate chosen so the simulated foreground stays the size of
	// the full-DES baseline.
	bigUsers := int(1e6 * o.scale())
	if bigUsers < 10*users06 {
		bigUsers = 10 * users06
	}
	grow := float64(bigUsers) / float64(users06)
	big, err := run(bigUsers, int(math.Ceil(float64(cores)*grow)),
		&hybrid.Config{SampleRate: float64(users06) / float64(bigUsers)})
	if err != nil {
		return nil, err
	}
	speed := upws(bigUsers, big) / upws(users06, fullAt06)
	if fullScale && speed < 100 {
		return nil, fmt.Errorf("millionuser: hybrid simulated only %.0f× more user-seconds per wall second, want >= 100×", speed)
	}
	if err := addRow(0.6, "hybrid", bigUsers, float64(users06)/float64(bigUsers), big,
		-1, -1, "-", fmt.Sprintf("%.0f", speed)); err != nil {
		return nil, err
	}
	return t, nil
}

// millionUserSim assembles the million-user scenario: a session population
// walking a two-step journey (think → request) against one exponential
// service, optionally under a hybrid fidelity split.
func millionUserSim(seed uint64, users, k int, meanServiceS, thinkS float64, hc *hybrid.Config) (*sim.Sim, error) {
	s := sim.New(sim.Options{Seed: seed})
	s.AddMachine("m0", k, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("front", dist.NewExponential(meanServiceS*1e9)),
		sim.RoundRobin, sim.Placement{Machine: "m0", Cores: k}); err != nil {
		return nil, err
	}
	if err := s.SetTopology(graph.Linear("main", "front")); err != nil {
		return nil, err
	}
	think := dist.NewExponential(thinkS * 1e9)
	s.SetClient(sim.ClientConfig{
		Sessions: &workload.SessionConfig{
			Users: users,
			Journeys: []workload.Journey{{
				Name:   "browse",
				Weight: 1,
				Steps: []workload.SessionStep{
					{Tree: 0, Think: think},
					{Tree: 0, Think: think},
				},
			}},
		},
	})
	if hc != nil {
		s.SetHybrid(*hc)
	}
	return s, nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func init() {
	Registry["millionuser"] = MillionUser
}
