package experiments

import (
	"fmt"

	"uqsim/internal/apps"
	"uqsim/internal/bighouse"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/job"
	"uqsim/internal/power"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// diurnalPattern is the load shape shared by the power experiments
// (Fig. 15): a day/night swing between ~5k and ~45k QPS, compressed so one
// "day" lasts 30 virtual seconds. The period is long relative to every
// decision interval studied, so what separates the intervals is how long
// the controller lags the morning ramp — the paper's violation mechanism.
func diurnalPattern() workload.Diurnal {
	return workload.Diurnal{
		Base:      25000,
		Amplitude: 20000,
		Period:    30 * des.Second,
		Floor:     2000,
	}
}

// Fig15Diurnal reports the diurnal input load pattern alongside the
// completion rate a powered-managed run actually sustains per time bucket.
func Fig15Diurnal(o Opts) (*Table, error) {
	t := NewTable("Fig. 15 — diurnal load pattern", "t_s", "target_qps", "measured_qps")
	pat := diurnalPattern()
	s, err := apps.TwoTier(apps.TwoTierConfig{Seed: o.Seed, Pattern: pat, Network: true})
	if err != nil {
		return nil, err
	}
	const bucket = des.Second
	_, total := o.window(0, 30*des.Second)
	nBuckets := int(total / bucket)
	counts := make([]int, nBuckets+1)
	s.OnRequestDone = func(now des.Time, _ *job.Request) {
		i := int(now / bucket)
		if i < len(counts) {
			counts[i]++
		}
	}
	rep, err := s.Run(0, total)
	if err != nil {
		return nil, err
	}
	if err := checkConservation(rep); err != nil {
		return nil, err
	}
	for i := 0; i < nBuckets; i++ {
		mid := des.Time(i)*bucket + bucket/2
		t.Add(
			fmt.Sprintf("%.2f", mid.Seconds()),
			fmt.Sprintf("%.0f", pat.RateAt(mid)),
			fmt.Sprintf("%.0f", float64(counts[i])/bucket.Seconds()),
		)
	}
	return t, nil
}

// powerRun executes one power-managed 2-tier run under the diurnal load
// and returns the manager.
func powerRun(o Opts, interval des.Time, dur des.Time) (*power.Manager, error) {
	s, err := apps.TwoTier(apps.TwoTierConfig{Seed: o.Seed, Pattern: diurnalPattern(), Network: true})
	if err != nil {
		return nil, err
	}
	var tiers []*power.Tier
	for _, name := range []string{"nginx", "memcached"} {
		dep, ok := s.Deployment(name)
		if !ok {
			return nil, fmt.Errorf("experiments: deployment %s missing", name)
		}
		tier := &power.Tier{Name: name}
		for _, in := range dep.Instances {
			tier.Allocs = append(tier.Allocs, in.Alloc)
		}
		tiers = append(tiers, tier)
	}
	mgr, err := power.New(s.Engine(), power.Config{
		Target:   5 * des.Millisecond,
		Interval: interval,
		Seed:     o.Seed,
	}, tiers)
	if err != nil {
		return nil, err
	}
	s.OnRequestDone = mgr.Observe
	mgr.Start()
	rep, err := s.Run(0, dur)
	if err != nil {
		return nil, err
	}
	if err := checkConservation(rep); err != nil {
		return nil, err
	}
	return mgr, nil
}

// Fig16PowerTrace regenerates the tail-latency + per-tier frequency traces
// of Algorithm 1 under the diurnal load (decision interval 0.5s).
func Fig16PowerTrace(o Opts) (*Table, error) {
	t := NewTable("Fig. 16 — power management trace (0.5s interval)",
		"t_s", "p99_ms", "nginx_mhz", "memcached_mhz")
	t.Note = "paper: tail converges near ~2ms against a 5ms QoS (DVFS granularity)"
	_, dur := o.window(0, 120*des.Second)
	mgr, err := powerRun(o, 500*des.Millisecond, dur)
	if err != nil {
		return nil, err
	}
	tail := mgr.TailTrace.Points()
	ng := mgr.FreqTrace["nginx"].Points()
	mc := mgr.FreqTrace["memcached"].Points()
	for i := range tail {
		if i >= len(ng) || i >= len(mc) {
			break
		}
		t.Add(
			fmt.Sprintf("%.2f", tail[i].T.Seconds()),
			fmt.Sprintf("%.3f", tail[i].V),
			fmt.Sprintf("%.0f", ng[i].V),
			fmt.Sprintf("%.0f", mc[i].V),
		)
	}
	return t, nil
}

// Table3PowerViolations regenerates Table III: QoS violation rate versus
// decision interval (paper, simulated system: 0.6% / 2.2% / 5.0% for
// 0.1s / 0.5s / 1s).
func Table3PowerViolations(o Opts) (*Table, error) {
	t := NewTable("Table III — power management QoS violation rates",
		"decision_interval_s", "violation_rate", "mean_freq_mhz", "normalized_energy", "cycles")
	t.Note = "paper (simulated): 0.6% / 2.2% / 5.0% for 0.1s / 0.5s / 1s"
	_, dur := o.window(0, 240*des.Second)
	for _, interval := range []des.Time{100 * des.Millisecond, 500 * des.Millisecond, des.Second} {
		mgr, err := powerRun(o, interval, dur)
		if err != nil {
			return nil, err
		}
		t.Add(
			fmt.Sprintf("%.1f", interval.Seconds()),
			fmt.Sprintf("%.1f%%", 100*mgr.ViolationRate()),
			fmt.Sprintf("%.0f", mgr.MeanFrequency()),
			fmt.Sprintf("%.2f", mgr.NormalizedEnergy()),
			fmt.Sprintf("%d", mgr.Cycles()),
		)
	}
	return t, nil
}

// ---- BigHouse adapter (keeps figures.go free of direct dependencies) ----

type bhResult struct {
	goodput float64
	p99     des.Time
}

func bhCollapse(bp *service.Blueprint, pathIdx int, meanKB float64) dist.Sampler {
	return bighouse.SingleStageService(apps.CollapsedSamplers(bp, pathIdx, meanKB)...)
}

func bhRun(seed uint64, servers int, svc dist.Sampler, qps float64, warmup, dur des.Time) (*bhResult, error) {
	res, err := bighouse.Run(bighouse.Config{
		Seed:         seed,
		Servers:      servers,
		Service:      svc,
		Interarrival: dist.NewExponential(1e9 / qps),
	}, warmup, dur)
	if err != nil {
		return nil, err
	}
	return &bhResult{goodput: res.GoodputQPS, p99: res.Latency.P99()}, nil
}
