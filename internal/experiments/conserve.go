package experiments

import (
	"uqsim/internal/sim"
	"uqsim/internal/validate"
)

// leaked is the conservation residue of a run report: nonzero means
// requests vanished from the accounting (arrivals != completions +
// timeouts + deadline + shed + dropped + unreachable + in-flight).
// It delegates to the shared validate helper so every experiment and
// test asserts the same identity.
func leaked(rep *sim.Report) int64 { return validate.Leaked(rep) }

// checkConservation asserts the extended conservation identity on a run
// report. Every experiment calls it on every report it produces, so a
// leak anywhere fails the whole experiment loudly instead of printing a
// quietly wrong table.
func checkConservation(rep *sim.Report) error { return validate.Conservation(rep) }
