// Package experiments regenerates every table and figure of the paper's
// evaluation section: each runner builds the corresponding scenario,
// sweeps the loads the figure plots, and emits the same rows/series the
// paper reports, as aligned text and CSV.
package experiments

import (
	"fmt"
	"strings"
)

// Table is an ordered result table.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row; cell counts must match the header.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting commas).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
