package experiments

import (
	"fmt"
	"sort"

	"uqsim/internal/sim"
)

// ReportTables renders a simulation report as summary, per-tier, and
// per-instance tables — shared by the CLI tools.
func ReportTables(rep *sim.Report) []*Table {
	sum := NewTable("Run summary",
		"offered_qps", "goodput_qps", "completions", "timeouts",
		"mean_ms", "p50_ms", "p95_ms", "p99_ms", "p999_ms", "in_flight")
	sum.Add(
		fmt.Sprintf("%.0f", rep.OfferedQPS),
		fmt.Sprintf("%.0f", rep.GoodputQPS),
		fmt.Sprintf("%d", rep.Completions),
		fmt.Sprintf("%d", rep.Timeouts),
		fmt.Sprintf("%.3f", rep.Latency.Mean().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P50().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P95().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P999().Millis()),
		fmt.Sprintf("%d", rep.InFlight),
	)

	tiers := NewTable("Per-tier residence latency", "tier", "requests", "mean_ms", "p99_ms")
	names := make([]string, 0, len(rep.PerTier))
	for name := range rep.PerTier {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := rep.PerTier[name]
		tiers.Add(name,
			fmt.Sprintf("%d", h.Count()),
			fmt.Sprintf("%.3f", h.Mean().Millis()),
			fmt.Sprintf("%.3f", h.P99().Millis()))
	}

	insts := NewTable("Instances",
		"instance", "service", "machine", "cores", "util", "completed", "qlen")
	for _, ir := range rep.Instances {
		insts.Add(ir.Name, ir.Service, ir.Machine,
			fmt.Sprintf("%d", ir.Cores),
			fmt.Sprintf("%.2f", ir.Utilization),
			fmt.Sprintf("%d", ir.Completed),
			fmt.Sprintf("%d", ir.QueueLen))
	}
	return []*Table{sum, tiers, insts}
}
