package experiments

import (
	"fmt"
	"sort"

	"uqsim/internal/sim"
)

// ReportTables renders a simulation report as summary, per-tier, and
// per-instance tables — shared by the CLI tools. Runs with failed calls gain
// a fourth per-service error-breakdown table.
func ReportTables(rep *sim.Report) []*Table {
	sum := NewTable("Run summary",
		"offered_qps", "goodput_qps", "completions", "timeouts", "deadline", "shed", "dropped",
		"unreachable", "retries", "hedges", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "p999_ms", "in_flight")
	sum.Add(
		fmt.Sprintf("%.0f", rep.OfferedQPS),
		fmt.Sprintf("%.0f", rep.GoodputQPS),
		fmt.Sprintf("%d", rep.Completions),
		fmt.Sprintf("%d", rep.Timeouts),
		fmt.Sprintf("%d", rep.DeadlineExpired),
		fmt.Sprintf("%d", rep.Shed),
		fmt.Sprintf("%d", rep.Dropped),
		fmt.Sprintf("%d", rep.Unreachable),
		fmt.Sprintf("%d", rep.Retries),
		fmt.Sprintf("%d", rep.HedgesIssued),
		fmt.Sprintf("%.3f", rep.Latency.Mean().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P50().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P95().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
		fmt.Sprintf("%.3f", rep.Latency.P999().Millis()),
		fmt.Sprintf("%d", rep.InFlight),
	)

	tiers := NewTable("Per-tier residence latency", "tier", "requests", "mean_ms", "p99_ms")
	names := make([]string, 0, len(rep.PerTier))
	for name := range rep.PerTier {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := rep.PerTier[name]
		tiers.Add(name,
			fmt.Sprintf("%d", h.Count()),
			fmt.Sprintf("%.3f", h.Mean().Millis()),
			fmt.Sprintf("%.3f", h.P99().Millis()))
	}

	insts := NewTable("Instances",
		"instance", "service", "machine", "cores", "util", "completed", "shed", "dropped",
		"canceled", "wasted", "qlen")
	for _, ir := range rep.Instances {
		insts.Add(ir.Name, ir.Service, ir.Machine,
			fmt.Sprintf("%d", ir.Cores),
			fmt.Sprintf("%.2f", ir.Utilization),
			fmt.Sprintf("%d", ir.Completed),
			fmt.Sprintf("%d", ir.Shed),
			fmt.Sprintf("%d", ir.Dropped),
			fmt.Sprintf("%d", ir.Canceled),
			fmt.Sprintf("%d", ir.Wasted),
			fmt.Sprintf("%d", ir.QueueLen))
	}
	out := []*Table{sum, tiers, insts}

	if rep.SampleRate < 1 {
		hy := NewTable("Hybrid fidelity (foreground above is the sampled fraction)",
			"sample_rate", "bg_arrivals", "bg_completions", "bg_shed", "bg_unreachable",
			"bg_lost_by_cause", "saturated_epochs")
		hy.Add(
			fmt.Sprintf("%g", rep.SampleRate),
			fmt.Sprintf("%d", rep.BackgroundArrivals),
			fmt.Sprintf("%d", rep.BackgroundCompletions),
			fmt.Sprintf("%d", rep.BackgroundShed),
			fmt.Sprintf("%d", rep.BackgroundUnreachable),
			formatByCause(rep.BackgroundShedByCause),
			fmt.Sprintf("%d", rep.SaturatedEpochs))
		out = append(out, hy)
	}

	if rep.CrossRegionCalls > 0 || rep.StaleReads > 0 {
		xr := NewTable("Cross-region traffic", "xregion_calls", "stale_reads")
		xr.Add(fmt.Sprintf("%d", rep.CrossRegionCalls), fmt.Sprintf("%d", rep.StaleReads))
		out = append(out, xr)
	}

	if len(rep.Errors) > 0 {
		errs := NewTable("Per-service call errors",
			"service", "timeouts", "shed", "dropped", "breaker_open", "retries", "hedges")
		svcs := make([]string, 0, len(rep.Errors))
		for name := range rep.Errors {
			svcs = append(svcs, name)
		}
		sort.Strings(svcs)
		for _, name := range svcs {
			ec := rep.Errors[name]
			errs.Add(name,
				fmt.Sprintf("%d", ec.Timeouts),
				fmt.Sprintf("%d", ec.Shed),
				fmt.Sprintf("%d", ec.Dropped),
				fmt.Sprintf("%d", ec.BreakerOpen),
				fmt.Sprintf("%d", ec.Retries),
				fmt.Sprintf("%d", ec.Hedges))
		}
		out = append(out, errs)
	}
	return out
}
