// Package job defines the units of work flowing through the simulator.
//
// A Request is one end-to-end user request (what the client measures); a Job
// is the request's visit to one inter-microservice path node, i.e. the unit
// a single microservice instance queues and processes. Fan-out clones a
// job per child node; fan-in joins them back (tracked by the sim package).
package job

import (
	"uqsim/internal/des"
)

// ID identifies requests and jobs uniquely within a run.
type ID uint64

// Outcome classifies how a request or job attempt ended. Beyond OK, the
// taxonomy follows the failure modes a resilience policy can produce:
// client/edge timeouts, load shedding, crash-induced drops, and circuit
// breakers failing fast.
type Outcome uint8

// Outcomes.
const (
	// OutcomeOK is a normal completion.
	OutcomeOK Outcome = iota
	// OutcomeTimeout marks a request the client gave up on, or a job
	// attempt abandoned by an edge timeout (the server-side work keeps
	// running either way).
	OutcomeTimeout
	// OutcomeShed marks admission rejected by queue-length load
	// shedding.
	OutcomeShed
	// OutcomeDropped marks work lost to a crashed machine or killed
	// instance.
	OutcomeDropped
	// OutcomeBreakerOpen marks a call failed fast by an open circuit
	// breaker.
	OutcomeBreakerOpen
	// OutcomeDeadline marks a request whose end-to-end deadline budget
	// expired: the subtree is short-circuited and queued work cancelled.
	OutcomeDeadline
	// OutcomeCanceled marks a job attempt abandoned before (or while)
	// serving because its request already terminated or a racing hedge
	// attempt won; queued canceled work is discarded at dequeue without
	// consuming server time. Job-level only — requests never end Canceled.
	OutcomeCanceled
	// OutcomeUnreachable marks an attempt failed fast because the
	// network fault model severed the machine pair (a partition) or a
	// gray link dropped the message before delivery.
	OutcomeUnreachable
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeShed:
		return "shed"
	case OutcomeDropped:
		return "dropped"
	case OutcomeBreakerOpen:
		return "breaker-open"
	case OutcomeDeadline:
		return "deadline"
	case OutcomeCanceled:
		return "canceled"
	case OutcomeUnreachable:
		return "unreachable"
	}
	return "unknown"
}

// Request is an end-to-end user request.
type Request struct {
	ID      ID
	Arrival des.Time // when the client issued it
	Finish  des.Time // when the last leaf job completed (0 while in flight)
	Class   int      // inter-service path choice (e.g. read vs write)
	SizeKB  float64  // payload size, drives per-byte stage costs
	Conn    int      // client connection the request arrived on

	// LeavesRemaining counts path-tree leaves not yet completed; the
	// request finishes when it reaches zero.
	LeavesRemaining int

	// Deadline is the absolute virtual time the request's end-to-end
	// budget expires (0: no budget). Child RPCs inherit the residual
	// implicitly — every tier sees the same absolute deadline, so the
	// remaining budget at any hop is Deadline minus the current time.
	Deadline des.Time

	// TimedOut marks a request whose client gave up waiting; the
	// server-side work still completes (and still holds resources),
	// matching real systems under timeout storms.
	TimedOut bool
	// Failed marks a request that terminated without completing: a
	// resilience policy exhausted its retries, a breaker failed it
	// fast, or a crash dropped its work with nothing left to retry.
	Failed bool
	// Outcome records how the request ended (meaningful once Done,
	// TimedOut, or Failed).
	Outcome Outcome
	// Attempt is 0 for the original request, k for its k-th retry.
	Attempt int

	// TierLatency accumulates per-tier residence time (queueing +
	// service) keyed by service name, consumed by the power manager.
	TierLatency map[string]des.Time
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.Finish != 0 }

// Expired reports whether the request's deadline budget has run out at
// virtual time now (always false without a budget).
func (r *Request) Expired(now des.Time) bool {
	return r.Deadline > 0 && now >= r.Deadline
}

// Remaining reports the residual deadline budget at virtual time now; 0
// when expired or budget-less.
func (r *Request) Remaining(now des.Time) des.Time {
	if r.Deadline == 0 || now >= r.Deadline {
		return 0
	}
	return r.Deadline - now
}

// Latency reports end-to-end latency; 0 while in flight.
func (r *Request) Latency() des.Time {
	if !r.Done() {
		return 0
	}
	return r.Finish - r.Arrival
}

// AddTierLatency accrues residence time against the named tier.
func (r *Request) AddTierLatency(tier string, d des.Time) {
	if r.TierLatency == nil {
		r.TierLatency = make(map[string]des.Time)
	}
	r.TierLatency[tier] += d
}

// Job is one request's visit to one path node / microservice instance.
type Job struct {
	ID  ID
	Req *Request

	// NodeID is the inter-service path-tree node this job executes.
	NodeID int
	// PathID selects the execution path inside the target microservice.
	PathID int
	// Conn classifies the job into an epoll/socket subqueue.
	Conn int
	// SizeKB drives per-byte costs (socket_read time ∝ bytes).
	SizeKB float64
	// Machine records which machine the job's instance runs on, set at
	// routing time; "" means the job came from the external client.
	Machine string
	// Instance records the instance that executed the job, set at
	// routing time (used by tracing).
	Instance string

	// Outcome records how this job attempt ended: OK on completion,
	// Timeout when an edge policy abandoned it mid-service (the server
	// still finishes it, but the result is discarded), Shed/Dropped when
	// it never ran to completion, BreakerOpen when it was never issued.
	Outcome Outcome

	Enqueued des.Time // entry into the current stage queue
	Arrived  des.Time // entry into the service (first stage)
	Started  des.Time // first moment a worker picked it up
	Finished des.Time // completion of the service-local path

	// StageIdx is the job's progress through its execution path
	// (index into the path's stage list), maintained by the service
	// runtime.
	StageIdx int
}

// Factory allocates request and job IDs.
type Factory struct {
	nextReq ID
	nextJob ID
}

// NewFactory returns an ID factory starting at 1 (0 is reserved "no id").
func NewFactory() *Factory { return &Factory{nextReq: 1, nextJob: 1} }

// NewRequest creates a request arriving at the given time.
func (f *Factory) NewRequest(arrival des.Time) *Request {
	r := &Request{ID: f.nextReq, Arrival: arrival}
	f.nextReq++
	return r
}

// NewJob creates a job belonging to req.
func (f *Factory) NewJob(req *Request) *Job {
	j := &Job{ID: f.nextJob, Req: req}
	f.nextJob++
	if req != nil {
		j.SizeKB = req.SizeKB
		j.Conn = req.Conn
	}
	return j
}

// Clone creates a fan-out copy of j for another path node, sharing the
// parent request but with a fresh job identity and reset progress.
func (f *Factory) Clone(j *Job) *Job {
	c := f.NewJob(j.Req)
	c.Conn = j.Conn
	c.SizeKB = j.SizeKB
	return c
}
