package job

import (
	"testing"

	"uqsim/internal/des"
)

func TestFactoryIDsUnique(t *testing.T) {
	f := NewFactory()
	seen := make(map[ID]bool)
	for i := 0; i < 100; i++ {
		r := f.NewRequest(0)
		j := f.NewJob(r)
		if r.ID == 0 || j.ID == 0 {
			t.Fatal("IDs must start at 1")
		}
		if seen[r.ID] {
			t.Fatal("duplicate request ID")
		}
		seen[r.ID] = true
	}
}

func TestRequestLifecycle(t *testing.T) {
	f := NewFactory()
	r := f.NewRequest(10 * des.Millisecond)
	if r.Done() {
		t.Fatal("new request should not be done")
	}
	if r.Latency() != 0 {
		t.Fatal("in-flight latency should be 0")
	}
	r.Finish = 15 * des.Millisecond
	if !r.Done() {
		t.Fatal("should be done")
	}
	if r.Latency() != 5*des.Millisecond {
		t.Fatalf("latency = %v", r.Latency())
	}
}

func TestRequestTierLatency(t *testing.T) {
	f := NewFactory()
	r := f.NewRequest(0)
	r.AddTierLatency("nginx", 2*des.Millisecond)
	r.AddTierLatency("nginx", 1*des.Millisecond)
	r.AddTierLatency("memcached", 500*des.Microsecond)
	if r.TierLatency["nginx"] != 3*des.Millisecond {
		t.Fatalf("nginx tier = %v", r.TierLatency["nginx"])
	}
	if r.TierLatency["memcached"] != 500*des.Microsecond {
		t.Fatalf("memcached tier = %v", r.TierLatency["memcached"])
	}
}

func TestNewJobInheritsRequestAttrs(t *testing.T) {
	f := NewFactory()
	r := f.NewRequest(0)
	r.SizeKB = 4.5
	r.Conn = 17
	j := f.NewJob(r)
	if j.SizeKB != 4.5 || j.Conn != 17 {
		t.Fatal("job should inherit request size and connection")
	}
	if j.Req != r {
		t.Fatal("job should reference its request")
	}
}

func TestCloneSharesRequestFreshIdentity(t *testing.T) {
	f := NewFactory()
	r := f.NewRequest(0)
	j := f.NewJob(r)
	j.Conn = 3
	j.SizeKB = 2
	j.StageIdx = 5
	c := f.Clone(j)
	if c.ID == j.ID {
		t.Fatal("clone must have a new ID")
	}
	if c.Req != r {
		t.Fatal("clone must share the request")
	}
	if c.Conn != 3 || c.SizeKB != 2 {
		t.Fatal("clone should copy conn and size")
	}
	if c.StageIdx != 0 {
		t.Fatal("clone progress must reset")
	}
}

func TestNewJobNilRequest(t *testing.T) {
	f := NewFactory()
	j := f.NewJob(nil)
	if j.Req != nil || j.ID == 0 {
		t.Fatal("nil-request job should work for substrate tests")
	}
}
