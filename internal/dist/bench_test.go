package dist

import (
	"testing"

	"uqsim/internal/rng"
)

func benchSampler(b *testing.B, s Sampler) {
	b.Helper()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(r)
	}
}

func BenchmarkExponentialSample(b *testing.B) { benchSampler(b, NewExponential(1000)) }
func BenchmarkErlangSample(b *testing.B)      { benchSampler(b, NewErlang(4, 1000)) }
func BenchmarkLogNormalSample(b *testing.B)   { benchSampler(b, LogNormalFromMoments(1000, 500)) }
func BenchmarkHyperExpSample(b *testing.B)    { benchSampler(b, NewHyperExp(0.9, 500, 5000)) }

func BenchmarkEmpiricalSample(b *testing.B) {
	r := rng.New(2)
	src := NewExponential(1000)
	raw := make([]float64, 10000)
	for i := range raw {
		raw[i] = src.Sample(r)
	}
	e, err := FromSamples(raw, 64)
	if err != nil {
		b.Fatal(err)
	}
	benchSampler(b, e)
}
