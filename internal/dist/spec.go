package dist

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Spec is the JSON-friendly description of a distribution, used by the
// service.json / client.json config front-end. Examples:
//
//	{"type": "exponential", "mean_us": 100}
//	{"type": "deterministic", "value_us": 12.5}
//	{"type": "lognormal", "mean_us": 80, "stddev_us": 40}
//	{"type": "pareto", "shape": 1.5, "scale_us": 50}
//	{"type": "erlang", "k": 4, "mean_us": 200}
//	{"type": "uniform", "lo_us": 10, "hi_us": 20}
//	{"type": "histogram", "edges_us": [0,10,20], "counts": [5,3]}
//
// All duration fields are expressed in microseconds (the natural unit for
// microservice stage times) and converted to nanoseconds internally.
type Spec struct {
	Type     string    `json:"type"`
	MeanUs   float64   `json:"mean_us,omitempty"`
	StddevUs float64   `json:"stddev_us,omitempty"`
	ValueUs  float64   `json:"value_us,omitempty"`
	LoUs     float64   `json:"lo_us,omitempty"`
	HiUs     float64   `json:"hi_us,omitempty"`
	Shape    float64   `json:"shape,omitempty"`
	ScaleUs  float64   `json:"scale_us,omitempty"`
	K        int       `json:"k,omitempty"`
	EdgesUs  []float64 `json:"edges_us,omitempty"`
	Counts   []float64 `json:"counts,omitempty"`
	// Hyperexponential (type "hyperexp") parameters: with probability P
	// the mean is MeanUs, otherwise Mean2Us.
	P       float64 `json:"p,omitempty"`
	Mean2Us float64 `json:"mean2_us,omitempty"`
}

const usToNs = 1000.0

// Build constructs the sampler described by the spec.
func (s Spec) Build() (Sampler, error) {
	switch strings.ToLower(s.Type) {
	case "deterministic", "det", "constant":
		return NewDeterministic(s.ValueUs * usToNs), nil
	case "exponential", "exp":
		if s.MeanUs <= 0 {
			return nil, fmt.Errorf("dist: exponential spec needs positive mean_us")
		}
		return NewExponential(s.MeanUs * usToNs), nil
	case "uniform":
		if s.HiUs < s.LoUs {
			return nil, fmt.Errorf("dist: uniform spec needs lo_us <= hi_us")
		}
		return NewUniform(s.LoUs*usToNs, s.HiUs*usToNs), nil
	case "normal", "gaussian":
		if s.StddevUs < 0 {
			return nil, fmt.Errorf("dist: normal spec needs non-negative stddev_us")
		}
		return NewNormal(s.MeanUs*usToNs, s.StddevUs*usToNs), nil
	case "lognormal":
		if s.MeanUs <= 0 || s.StddevUs <= 0 {
			return nil, fmt.Errorf("dist: lognormal spec needs positive mean_us and stddev_us")
		}
		return LogNormalFromMoments(s.MeanUs*usToNs, s.StddevUs*usToNs), nil
	case "pareto":
		if s.Shape <= 0 || s.ScaleUs <= 0 {
			return nil, fmt.Errorf("dist: pareto spec needs positive shape and scale_us")
		}
		return NewPareto(s.Shape, s.ScaleUs*usToNs), nil
	case "erlang":
		if s.K < 1 || s.MeanUs <= 0 {
			return nil, fmt.Errorf("dist: erlang spec needs k >= 1 and positive mean_us")
		}
		return NewErlang(s.K, s.MeanUs*usToNs), nil
	case "weibull":
		if s.Shape <= 0 || s.ScaleUs <= 0 {
			return nil, fmt.Errorf("dist: weibull spec needs positive shape and scale_us")
		}
		return NewWeibull(s.Shape, s.ScaleUs*usToNs), nil
	case "hyperexp", "hyperexponential":
		if s.P < 0 || s.P > 1 || s.MeanUs <= 0 || s.Mean2Us <= 0 {
			return nil, fmt.Errorf("dist: hyperexp spec needs p in [0,1] and positive mean_us, mean2_us")
		}
		return NewHyperExp(s.P, s.MeanUs*usToNs, s.Mean2Us*usToNs), nil
	case "histogram", "empirical":
		edges := make([]float64, len(s.EdgesUs))
		for i, e := range s.EdgesUs {
			edges[i] = e * usToNs
		}
		return NewEmpirical(edges, s.Counts)
	case "":
		return nil, fmt.Errorf("dist: spec missing type")
	default:
		return nil, fmt.Errorf("dist: unknown distribution type %q", s.Type)
	}
}

// ParseSpec decodes a JSON blob into a sampler.
func ParseSpec(raw []byte) (Sampler, error) {
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("dist: bad spec JSON: %w", err)
	}
	return s.Build()
}
