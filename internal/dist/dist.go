// Package dist provides the probability distributions µqSim uses for
// processing times, interarrival gaps, request sizes, and path choices.
//
// All duration-valued samplers work in float64 nanoseconds; conversion to
// the engine's integer clock happens at the boundary (des.FromNanos). Every
// Sample call takes an explicit random stream so that components own their
// streams (see package rng) and runs stay reproducible.
package dist

import (
	"fmt"
	"math"

	"uqsim/internal/rng"
)

// Sampler draws values from a distribution. Duration-valued samplers return
// nanoseconds; dimensionless samplers (e.g. request sizes) document their
// own unit.
type Sampler interface {
	// Sample draws one value using the provided stream.
	Sample(r *rng.Source) float64
	// Mean reports the distribution's expected value (math.NaN if the
	// mean does not exist, e.g. Pareto with shape ≤ 1).
	Mean() float64
}

// Deterministic always returns a fixed value.
type Deterministic struct{ Value float64 }

// NewDeterministic returns a point-mass sampler at v.
func NewDeterministic(v float64) Deterministic { return Deterministic{Value: v} }

func (d Deterministic) Sample(*rng.Source) float64 { return d.Value }
func (d Deterministic) Mean() float64              { return d.Value }
func (d Deterministic) String() string             { return fmt.Sprintf("det(%g)", d.Value) }

// Exponential is the memoryless distribution with the given mean, the
// canonical model for interarrival gaps and lightweight service times.
type Exponential struct{ MeanValue float64 }

// NewExponential returns an exponential sampler with the given mean.
// The mean must be positive.
func NewExponential(mean float64) Exponential {
	if mean <= 0 {
		panic("dist: exponential mean must be positive")
	}
	return Exponential{MeanValue: mean}
}

func (e Exponential) Sample(r *rng.Source) float64 { return r.ExpFloat64() * e.MeanValue }
func (e Exponential) Mean() float64                { return e.MeanValue }
func (e Exponential) String() string               { return fmt.Sprintf("exp(mean=%g)", e.MeanValue) }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// NewUniform returns a uniform sampler over [lo, hi). Requires lo ≤ hi.
func NewUniform(lo, hi float64) Uniform {
	if hi < lo {
		panic("dist: uniform requires lo <= hi")
	}
	return Uniform{Lo: lo, Hi: hi}
}

func (u Uniform) Sample(r *rng.Source) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }
func (u Uniform) Mean() float64                { return (u.Lo + u.Hi) / 2 }

// Normal is a Gaussian truncated at zero (durations cannot be negative).
// The reported Mean ignores the (assumed small) truncated mass.
type Normal struct{ Mu, Sigma float64 }

// NewNormal returns a zero-truncated normal sampler.
func NewNormal(mu, sigma float64) Normal {
	if sigma < 0 {
		panic("dist: normal sigma must be non-negative")
	}
	return Normal{Mu: mu, Sigma: sigma}
}

func (n Normal) Sample(r *rng.Source) float64 {
	v := n.Mu + r.NormFloat64()*n.Sigma
	if v < 0 {
		return 0
	}
	return v
}
func (n Normal) Mean() float64 { return n.Mu }

// LogNormal has log-space parameters Mu and Sigma: exp(N(Mu, Sigma²)).
// Heavy-ish right tail; a common fit for RPC service times.
type LogNormal struct{ Mu, Sigma float64 }

// NewLogNormal constructs from log-space parameters.
func NewLogNormal(mu, sigma float64) LogNormal {
	if sigma < 0 {
		panic("dist: lognormal sigma must be non-negative")
	}
	return LogNormal{Mu: mu, Sigma: sigma}
}

// LogNormalFromMoments constructs a LogNormal with the given real-space
// mean and standard deviation.
func LogNormalFromMoments(mean, stddev float64) LogNormal {
	if mean <= 0 {
		panic("dist: lognormal mean must be positive")
	}
	cv2 := (stddev * stddev) / (mean * mean)
	sigma2 := math.Log(1 + cv2)
	mu := math.Log(mean) - sigma2/2
	return LogNormal{Mu: mu, Sigma: math.Sqrt(sigma2)}
}

func (l LogNormal) Sample(r *rng.Source) float64 {
	return math.Exp(l.Mu + r.NormFloat64()*l.Sigma)
}
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Pareto is the heavy-tailed distribution with minimum Scale and tail index
// Shape: P(X > x) = (Scale/x)^Shape for x ≥ Scale.
type Pareto struct{ Shape, Scale float64 }

// NewPareto returns a Pareto sampler. Shape and Scale must be positive.
func NewPareto(shape, scale float64) Pareto {
	if shape <= 0 || scale <= 0 {
		panic("dist: pareto shape and scale must be positive")
	}
	return Pareto{Shape: shape, Scale: scale}
}

func (p Pareto) Sample(r *rng.Source) float64 {
	u := 1 - r.Float64() // in (0,1]
	return p.Scale / math.Pow(u, 1/p.Shape)
}

func (p Pareto) Mean() float64 {
	if p.Shape <= 1 {
		return math.NaN()
	}
	return p.Shape * p.Scale / (p.Shape - 1)
}

// Erlang is the sum of K independent exponentials; its squared coefficient
// of variation is 1/K, making it a convenient low-variance service model.
type Erlang struct {
	K         int
	MeanValue float64
}

// NewErlang returns an Erlang-K sampler with the given overall mean.
func NewErlang(k int, mean float64) Erlang {
	if k < 1 {
		panic("dist: erlang requires k >= 1")
	}
	if mean <= 0 {
		panic("dist: erlang mean must be positive")
	}
	return Erlang{K: k, MeanValue: mean}
}

func (e Erlang) Sample(r *rng.Source) float64 {
	phaseMean := e.MeanValue / float64(e.K)
	sum := 0.0
	for i := 0; i < e.K; i++ {
		sum += r.ExpFloat64() * phaseMean
	}
	return sum
}
func (e Erlang) Mean() float64 { return e.MeanValue }

// Weibull with shape K and scale Lambda. Shape < 1 gives a heavy tail,
// shape > 1 a light one.
type Weibull struct{ K, Lambda float64 }

// NewWeibull returns a Weibull sampler. Both parameters must be positive.
func NewWeibull(k, lambda float64) Weibull {
	if k <= 0 || lambda <= 0 {
		panic("dist: weibull parameters must be positive")
	}
	return Weibull{K: k, Lambda: lambda}
}

func (w Weibull) Sample(r *rng.Source) float64 {
	u := 1 - r.Float64()
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// HyperExp is the two-phase hyperexponential H2: with probability P the
// sample is Exp(Mean1), otherwise Exp(Mean2). Its squared coefficient of
// variation is at least 1, making it the standard model for bursty
// service times (fast common case, slow rare case).
type HyperExp struct {
	P            float64
	Mean1, Mean2 float64
}

// NewHyperExp returns an H2 sampler; p in [0,1], means positive.
func NewHyperExp(p, mean1, mean2 float64) HyperExp {
	if p < 0 || p > 1 {
		panic("dist: hyperexp p must be in [0,1]")
	}
	if mean1 <= 0 || mean2 <= 0 {
		panic("dist: hyperexp means must be positive")
	}
	return HyperExp{P: p, Mean1: mean1, Mean2: mean2}
}

func (h HyperExp) Sample(r *rng.Source) float64 {
	mean := h.Mean2
	if r.Float64() < h.P {
		mean = h.Mean1
	}
	return r.ExpFloat64() * mean
}

func (h HyperExp) Mean() float64 { return h.P*h.Mean1 + (1-h.P)*h.Mean2 }

// SCV reports the squared coefficient of variation (≥ 1 for H2).
func (h HyperExp) SCV() float64 {
	m := h.Mean()
	es2 := 2 * (h.P*h.Mean1*h.Mean1 + (1-h.P)*h.Mean2*h.Mean2)
	return es2/(m*m) - 1
}

// Bernoulli returns 1 with probability P, else 0. Used for path choices
// such as MongoDB cache hit vs. miss.
type Bernoulli struct{ P float64 }

// NewBernoulli returns a Bernoulli sampler; p must be in [0,1].
func NewBernoulli(p float64) Bernoulli {
	if p < 0 || p > 1 {
		panic("dist: bernoulli p must be in [0,1]")
	}
	return Bernoulli{P: p}
}

func (b Bernoulli) Sample(r *rng.Source) float64 {
	if r.Float64() < b.P {
		return 1
	}
	return 0
}
func (b Bernoulli) Mean() float64 { return b.P }
