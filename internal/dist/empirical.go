package dist

import (
	"fmt"
	"sort"

	"uqsim/internal/rng"
)

// Empirical samples from a profiled histogram — the paper's mechanism for
// feeding measured processing-time PDFs into the simulator (Table I,
// "histograms: processing time PDF per microservice").
//
// The histogram is a set of bins [Edges[i], Edges[i+1]) with observation
// counts; sampling picks a bin proportionally to its count and then draws
// uniformly within the bin, i.e. the piecewise-linear inverse-CDF estimate.
type Empirical struct {
	edges []float64 // len n+1, strictly increasing
	cum   []float64 // len n, cumulative normalized counts
	mean  float64
}

// NewEmpirical builds a histogram sampler from bin edges (len n+1,
// strictly increasing) and counts (len n, non-negative, positive sum).
func NewEmpirical(edges []float64, counts []float64) (*Empirical, error) {
	if len(edges) < 2 || len(counts) != len(edges)-1 {
		return nil, fmt.Errorf("dist: empirical needs n+1 edges for n counts (got %d edges, %d counts)", len(edges), len(counts))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("dist: empirical edges must be strictly increasing (edge %d)", i)
		}
	}
	total := 0.0
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("dist: empirical count %d is negative", i)
		}
		total += c
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: empirical histogram is empty")
	}
	e := &Empirical{
		edges: append([]float64(nil), edges...),
		cum:   make([]float64, len(counts)),
	}
	acc := 0.0
	mean := 0.0
	for i, c := range counts {
		p := c / total
		acc += p
		e.cum[i] = acc
		mean += p * (edges[i] + edges[i+1]) / 2
	}
	e.cum[len(e.cum)-1] = 1
	e.mean = mean
	return e, nil
}

// FromSamples builds an Empirical from raw observations using equal-count
// (quantile) bins, mirroring how profiled timestamps become a histogram.
func FromSamples(samples []float64, bins int) (*Empirical, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("dist: need at least 2 samples")
	}
	if bins < 1 {
		return nil, fmt.Errorf("dist: need at least 1 bin")
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if bins > len(sorted)-1 {
		bins = len(sorted) - 1
	}
	edges := make([]float64, 0, bins+1)
	counts := make([]float64, 0, bins)
	prev := sorted[0]
	edges = append(edges, prev)
	for i := 1; i <= bins; i++ {
		idx := i * (len(sorted) - 1) / bins
		edge := sorted[idx]
		if edge <= prev {
			continue // collapse duplicate quantiles
		}
		edges = append(edges, edge)
		counts = append(counts, float64(idx*(len(sorted)-1)/bins))
		prev = edge
	}
	if len(edges) < 2 {
		// All samples identical: widen artificially so the sampler works.
		edges = []float64{sorted[0], sorted[0] + 1}
		counts = []float64{1}
	} else {
		// Recompute counts as actual per-bin tallies.
		counts = make([]float64, len(edges)-1)
		for _, s := range sorted {
			i := sort.SearchFloat64s(edges, s)
			if i > 0 {
				i--
			}
			if i >= len(counts) {
				i = len(counts) - 1
			}
			counts[i]++
		}
	}
	return NewEmpirical(edges, counts)
}

func (e *Empirical) Sample(r *rng.Source) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(e.cum, u)
	if i >= len(e.cum) {
		i = len(e.cum) - 1
	}
	lo, hi := e.edges[i], e.edges[i+1]
	return lo + r.Float64()*(hi-lo)
}

func (e *Empirical) Mean() float64 { return e.mean }

// Bins reports the number of histogram bins.
func (e *Empirical) Bins() int { return len(e.cum) }

// Support reports the histogram's [min, max) range.
func (e *Empirical) Support() (lo, hi float64) { return e.edges[0], e.edges[len(e.edges)-1] }
