package dist

import (
	"fmt"
	"sort"

	"uqsim/internal/rng"
)

// FreqTable maps CPU frequencies (MHz) to processing-time samplers,
// mirroring the paper's per-DVFS-setting histograms: "to simulate the
// impact of power management, we adjust the processing time of each
// execution stage as frequency changes by providing histograms
// corresponding to different frequencies."
//
// Lookups at a frequency without an explicit entry fall back to scaling the
// nominal sampler by nominalMHz/f — the standard linear CPU-bound model.
type FreqTable struct {
	nominalMHz float64
	nominal    Sampler
	entries    map[int]Sampler // key: MHz
	keys       []int           // sorted MHz keys
}

// NewFreqTable creates a table whose fallback behaviour scales the nominal
// sampler (calibrated at nominalMHz) linearly with frequency.
func NewFreqTable(nominalMHz float64, nominal Sampler) *FreqTable {
	if nominalMHz <= 0 {
		panic("dist: nominal frequency must be positive")
	}
	if nominal == nil {
		panic("dist: nominal sampler must not be nil")
	}
	return &FreqTable{
		nominalMHz: nominalMHz,
		nominal:    nominal,
		entries:    make(map[int]Sampler),
	}
}

// Set registers an explicit sampler for the given frequency.
func (t *FreqTable) Set(mhz int, s Sampler) {
	if s == nil {
		panic("dist: nil sampler in freq table")
	}
	if _, ok := t.entries[mhz]; !ok {
		t.keys = append(t.keys, mhz)
		sort.Ints(t.keys)
	}
	t.entries[mhz] = s
}

// At returns the sampler for frequency mhz: the exact entry if present,
// otherwise the frequency-scaled nominal sampler.
func (t *FreqTable) At(mhz float64) Sampler {
	if s, ok := t.entries[int(mhz)]; ok {
		return s
	}
	if mhz <= 0 {
		panic(fmt.Sprintf("dist: freq table lookup at non-positive frequency %v", mhz))
	}
	if mhz == t.nominalMHz {
		return t.nominal
	}
	return Scaled{Base: t.nominal, Factor: t.nominalMHz / mhz}
}

// SampleAt draws one processing time at the given frequency.
func (t *FreqTable) SampleAt(mhz float64, r *rng.Source) float64 {
	return t.At(mhz).Sample(r)
}

// Nominal reports the nominal sampler and its calibration frequency.
func (t *FreqTable) Nominal() (Sampler, float64) { return t.nominal, t.nominalMHz }

// Frequencies reports the explicitly registered frequencies, ascending.
func (t *FreqTable) Frequencies() []int { return append([]int(nil), t.keys...) }
