package dist

import (
	"math"

	"uqsim/internal/rng"
)

// Scaled multiplies every sample of Base by Factor. The simulator uses it
// to model DVFS: a stage calibrated at nominal frequency f0 running at f
// samples with Factor = f0/f.
type Scaled struct {
	Base   Sampler
	Factor float64
}

// NewScaled wraps base so every sample is multiplied by factor.
func NewScaled(base Sampler, factor float64) Scaled {
	if base == nil {
		panic("dist: scaled base must not be nil")
	}
	if factor < 0 {
		panic("dist: scale factor must be non-negative")
	}
	return Scaled{Base: base, Factor: factor}
}

func (s Scaled) Sample(r *rng.Source) float64 { return s.Base.Sample(r) * s.Factor }
func (s Scaled) Mean() float64                { return s.Base.Mean() * s.Factor }

// Shifted adds Offset to every sample of Base (clamping at zero), modelling
// a fixed overhead on top of a stochastic cost.
type Shifted struct {
	Base   Sampler
	Offset float64
}

// NewShifted wraps base so every sample has offset added.
func NewShifted(base Sampler, offset float64) Shifted {
	if base == nil {
		panic("dist: shifted base must not be nil")
	}
	return Shifted{Base: base, Offset: offset}
}

func (s Shifted) Sample(r *rng.Source) float64 {
	v := s.Base.Sample(r) + s.Offset
	if v < 0 {
		return 0
	}
	return v
}
func (s Shifted) Mean() float64 { return s.Base.Mean() + s.Offset }

// Clamped restricts samples of Base to [Lo, Hi]. Used to bound heavy tails
// (e.g. a Pareto service time with a timeout ceiling).
type Clamped struct {
	Base   Sampler
	Lo, Hi float64
}

// NewClamped wraps base, clamping samples into [lo, hi].
func NewClamped(base Sampler, lo, hi float64) Clamped {
	if base == nil {
		panic("dist: clamped base must not be nil")
	}
	if hi < lo {
		panic("dist: clamp requires lo <= hi")
	}
	return Clamped{Base: base, Lo: lo, Hi: hi}
}

func (c Clamped) Sample(r *rng.Source) float64 {
	v := c.Base.Sample(r)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean of a clamped distribution has no simple closed form; report the
// base mean clamped into the interval as an approximation.
func (c Clamped) Mean() float64 {
	m := c.Base.Mean()
	if math.IsNaN(m) {
		return math.NaN()
	}
	if m < c.Lo {
		return c.Lo
	}
	if m > c.Hi {
		return c.Hi
	}
	return m
}

// Mixture draws from one of several component samplers with fixed weights —
// the distribution-level analogue of µqSim's probabilistic execution paths.
type Mixture struct {
	components []Sampler
	cum        []float64 // cumulative normalized weights
	mean       float64
}

// NewMixture builds a mixture; weights need not be normalized but must be
// non-negative with a positive sum, and len(weights) == len(components).
func NewMixture(components []Sampler, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("dist: mixture needs equal, non-zero component and weight counts")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: mixture weights must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("dist: mixture weights must sum to a positive value")
	}
	m := &Mixture{components: components, cum: make([]float64, len(weights))}
	acc := 0.0
	mean := 0.0
	for i, w := range weights {
		acc += w / total
		m.cum[i] = acc
		mean += (w / total) * components[i].Mean()
	}
	m.cum[len(m.cum)-1] = 1 // guard against rounding
	m.mean = mean
	return m
}

func (m *Mixture) Sample(r *rng.Source) float64 {
	u := r.Float64()
	for i, c := range m.cum {
		if u <= c {
			return m.components[i].Sample(r)
		}
	}
	return m.components[len(m.components)-1].Sample(r)
}
func (m *Mixture) Mean() float64 { return m.mean }

// Choice picks an index in [0, len(weights)) with the given weights. It is
// the discrete selector behind probabilistic execution paths and
// inter-microservice path selection.
type Choice struct {
	cum []float64
}

// NewChoice builds a weighted index chooser. Weights must be non-negative
// with positive sum.
func NewChoice(weights []float64) *Choice {
	if len(weights) == 0 {
		panic("dist: choice needs at least one weight")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: choice weights must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("dist: choice weights must sum to a positive value")
	}
	c := &Choice{cum: make([]float64, len(weights))}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		c.cum[i] = acc
	}
	c.cum[len(c.cum)-1] = 1
	return c
}

// Pick draws a weighted index.
func (c *Choice) Pick(r *rng.Source) int {
	u := r.Float64()
	for i, cw := range c.cum {
		if u <= cw {
			return i
		}
	}
	return len(c.cum) - 1
}

// N reports the number of alternatives.
func (c *Choice) N() int { return len(c.cum) }

// P reports the probability of alternative i (0 when out of range).
func (c *Choice) P(i int) float64 {
	if i < 0 || i >= len(c.cum) {
		return 0
	}
	if i == 0 {
		return c.cum[0]
	}
	return c.cum[i] - c.cum[i-1]
}
