package dist

import (
	"math"
	"testing"
	"testing/quick"

	"uqsim/internal/rng"
)

const sampleN = 200000

// sampleStats draws n samples and returns their mean and variance.
func sampleStats(t *testing.T, s Sampler, n int) (mean, variance float64) {
	t.Helper()
	r := rng.New(12345)
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Sample(r)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("sampler produced %v", v)
		}
		sum += v
		sumsq += v * v
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return mean, variance
}

func assertClose(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > relTol {
			t.Errorf("%s = %v, want ≈0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %v, want ≈%v (tol %v)", name, got, want, relTol)
	}
}

func TestDeterministic(t *testing.T) {
	d := NewDeterministic(42)
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 42 {
			t.Fatal("deterministic sampler varied")
		}
	}
	if d.Mean() != 42 {
		t.Fatal("mean mismatch")
	}
}

func TestExponentialMoments(t *testing.T) {
	e := NewExponential(250)
	mean, variance := sampleStats(t, e, sampleN)
	assertClose(t, "exp mean", mean, 250, 0.02)
	assertClose(t, "exp var", variance, 250*250, 0.05)
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewExponential(0)
}

func TestUniformMoments(t *testing.T) {
	u := NewUniform(10, 30)
	mean, variance := sampleStats(t, u, sampleN)
	assertClose(t, "uniform mean", mean, 20, 0.02)
	assertClose(t, "uniform var", variance, 400.0/12, 0.05)
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		v := u.Sample(r)
		if v < 10 || v >= 30 {
			t.Fatalf("uniform sample %v out of range", v)
		}
	}
}

func TestNormalTruncation(t *testing.T) {
	n := NewNormal(5, 100) // heavy truncation
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		if n.Sample(r) < 0 {
			t.Fatal("normal sampler returned negative value")
		}
	}
}

func TestNormalMoments(t *testing.T) {
	n := NewNormal(1000, 50) // effectively untruncated
	mean, variance := sampleStats(t, n, sampleN)
	assertClose(t, "normal mean", mean, 1000, 0.01)
	assertClose(t, "normal var", variance, 2500, 0.05)
}

func TestLogNormalFromMoments(t *testing.T) {
	l := LogNormalFromMoments(100, 50)
	mean, variance := sampleStats(t, l, sampleN)
	assertClose(t, "lognormal mean", mean, 100, 0.02)
	assertClose(t, "lognormal var", variance, 2500, 0.10)
	assertClose(t, "lognormal Mean()", l.Mean(), 100, 1e-9)
}

func TestParetoMeanAndTail(t *testing.T) {
	p := NewPareto(2.5, 60)
	mean, _ := sampleStats(t, p, sampleN)
	assertClose(t, "pareto mean", mean, p.Mean(), 0.05)
	if !math.IsNaN(NewPareto(0.9, 1).Mean()) {
		t.Error("pareto with shape<=1 should have NaN mean")
	}
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		if p.Sample(r) < 60 {
			t.Fatal("pareto sample below scale")
		}
	}
}

func TestErlangMomentsAndVarianceReduction(t *testing.T) {
	e := NewErlang(4, 200)
	mean, variance := sampleStats(t, e, sampleN)
	assertClose(t, "erlang mean", mean, 200, 0.02)
	// Var of Erlang-K with mean m is m^2/K.
	assertClose(t, "erlang var", variance, 200*200/4, 0.05)
}

func TestWeibullMean(t *testing.T) {
	w := NewWeibull(2, 100)
	mean, _ := sampleStats(t, w, sampleN)
	assertClose(t, "weibull mean", mean, w.Mean(), 0.02)
}

func TestBernoulli(t *testing.T) {
	b := NewBernoulli(0.3)
	mean, _ := sampleStats(t, b, sampleN)
	assertClose(t, "bernoulli mean", mean, 0.3, 0.03)
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		v := b.Sample(r)
		if v != 0 && v != 1 {
			t.Fatalf("bernoulli sample %v", v)
		}
	}
}

func TestScaled(t *testing.T) {
	s := NewScaled(NewDeterministic(100), 2.6/1.2)
	r := rng.New(1)
	assertClose(t, "scaled", s.Sample(r), 100*2.6/1.2, 1e-12)
	assertClose(t, "scaled mean", s.Mean(), 100*2.6/1.2, 1e-12)
}

func TestShiftedClampsNegative(t *testing.T) {
	s := NewShifted(NewDeterministic(10), -20)
	r := rng.New(1)
	if s.Sample(r) != 0 {
		t.Fatal("shifted should clamp to zero")
	}
}

func TestClamped(t *testing.T) {
	c := NewClamped(NewExponential(100), 50, 150)
	r := rng.New(6)
	for i := 0; i < 10000; i++ {
		v := c.Sample(r)
		if v < 50 || v > 150 {
			t.Fatalf("clamped sample %v outside [50,150]", v)
		}
	}
}

func TestMixtureMeanAndSelection(t *testing.T) {
	m := NewMixture(
		[]Sampler{NewDeterministic(10), NewDeterministic(100)},
		[]float64{3, 1},
	)
	mean, _ := sampleStats(t, m, sampleN)
	want := 0.75*10 + 0.25*100
	assertClose(t, "mixture mean", mean, want, 0.02)
	assertClose(t, "mixture Mean()", m.Mean(), want, 1e-12)
}

func TestMixtureValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]Sampler{NewDeterministic(1)}, []float64{-1}) },
		func() { NewMixture([]Sampler{NewDeterministic(1)}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestChoiceDistribution(t *testing.T) {
	c := NewChoice([]float64{1, 2, 7})
	r := rng.New(7)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Pick(r)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("choice %d frequency %v, want %v", i, got, want)
		}
	}
	if c.N() != 3 {
		t.Errorf("N = %d", c.N())
	}
}

func TestChoiceZeroWeightNeverPicked(t *testing.T) {
	c := NewChoice([]float64{0, 1, 0})
	r := rng.New(8)
	for i := 0; i < 10000; i++ {
		if c.Pick(r) != 1 {
			t.Fatal("picked zero-weight alternative")
		}
	}
}

// Property: all duration samplers produce non-negative values.
func TestNonNegativityProperty(t *testing.T) {
	prop := func(seed uint64, meanCenti uint32) bool {
		mean := float64(meanCenti%100000)/100 + 0.01
		r := rng.New(seed)
		samplers := []Sampler{
			NewExponential(mean),
			NewNormal(mean, mean/2),
			LogNormalFromMoments(mean, mean/3),
			NewErlang(3, mean),
			NewWeibull(1.5, mean),
			NewUniform(0, mean),
			NewPareto(2, mean),
		}
		for _, s := range samplers {
			for i := 0; i < 50; i++ {
				if s.Sample(r) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalBasic(t *testing.T) {
	e, err := NewEmpirical([]float64{0, 10, 20, 50}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Bins() != 3 {
		t.Fatalf("bins = %d", e.Bins())
	}
	lo, hi := e.Support()
	if lo != 0 || hi != 50 {
		t.Fatalf("support = [%v,%v)", lo, hi)
	}
	r := rng.New(9)
	for i := 0; i < 10000; i++ {
		v := e.Sample(r)
		if v < 0 || v >= 50 {
			t.Fatalf("sample %v out of support", v)
		}
	}
	// Mean: bin midpoints 5, 15, 35 with weights .25, .5, .25 → 17.5.
	assertClose(t, "empirical mean", e.Mean(), 17.5, 1e-9)
	mean, _ := sampleStats(t, e, sampleN)
	assertClose(t, "empirical sampled mean", mean, 17.5, 0.02)
}

func TestEmpiricalValidation(t *testing.T) {
	cases := []struct {
		edges  []float64
		counts []float64
	}{
		{[]float64{0}, []float64{}},
		{[]float64{0, 10}, []float64{1, 2}},
		{[]float64{10, 10}, []float64{1}},
		{[]float64{0, 10}, []float64{-1}},
		{[]float64{0, 10}, []float64{0}},
	}
	for i, c := range cases {
		if _, err := NewEmpirical(c.edges, c.counts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFromSamplesRoundTrip(t *testing.T) {
	r := rng.New(10)
	src := NewExponential(100)
	raw := make([]float64, 20000)
	for i := range raw {
		raw[i] = src.Sample(r)
	}
	e, err := FromSamples(raw, 64)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := sampleStats(t, e, sampleN)
	// Histogram truncates the exp tail at the max observation; allow slack.
	assertClose(t, "histogram-of-exp mean", mean, 100, 0.10)
}

func TestFromSamplesDegenerate(t *testing.T) {
	e, err := FromSamples([]float64{5, 5, 5, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	v := e.Sample(r)
	if v < 5 || v > 6 {
		t.Fatalf("degenerate histogram sample %v", v)
	}
}

func TestFreqTableScalingFallback(t *testing.T) {
	ft := NewFreqTable(2600, NewDeterministic(100))
	r := rng.New(12)
	if got := ft.SampleAt(2600, r); got != 100 {
		t.Fatalf("nominal sample = %v", got)
	}
	if got := ft.SampleAt(1300, r); math.Abs(got-200) > 1e-9 {
		t.Fatalf("half-frequency sample = %v, want 200", got)
	}
}

func TestFreqTableExplicitEntry(t *testing.T) {
	ft := NewFreqTable(2600, NewDeterministic(100))
	ft.Set(1200, NewDeterministic(333))
	r := rng.New(13)
	if got := ft.SampleAt(1200, r); got != 333 {
		t.Fatalf("explicit entry sample = %v", got)
	}
	fs := ft.Frequencies()
	if len(fs) != 1 || fs[0] != 1200 {
		t.Fatalf("frequencies = %v", fs)
	}
}

func TestSpecBuildAll(t *testing.T) {
	specs := []string{
		`{"type":"deterministic","value_us":5}`,
		`{"type":"exponential","mean_us":100}`,
		`{"type":"uniform","lo_us":1,"hi_us":2}`,
		`{"type":"normal","mean_us":10,"stddev_us":2}`,
		`{"type":"lognormal","mean_us":10,"stddev_us":5}`,
		`{"type":"pareto","shape":2,"scale_us":10}`,
		`{"type":"erlang","k":3,"mean_us":30}`,
		`{"type":"weibull","shape":1.5,"scale_us":10}`,
		`{"type":"histogram","edges_us":[0,1,2],"counts":[1,1]}`,
		`{"type":"hyperexp","p":0.9,"mean_us":10,"mean2_us":100}`,
	}
	for _, raw := range specs {
		s, err := ParseSpec([]byte(raw))
		if err != nil {
			t.Errorf("spec %s: %v", raw, err)
			continue
		}
		r := rng.New(14)
		if v := s.Sample(r); v < 0 {
			t.Errorf("spec %s sampled %v", raw, v)
		}
	}
}

func TestSpecBuildUnitsAreMicroseconds(t *testing.T) {
	s, err := ParseSpec([]byte(`{"type":"deterministic","value_us":5}`))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(15)
	if got := s.Sample(r); got != 5000 {
		t.Fatalf("5us should sample as 5000ns, got %v", got)
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{}`,
		`{"type":"nope"}`,
		`{"type":"exponential"}`,
		`{"type":"exponential","mean_us":-1}`,
		`{"type":"uniform","lo_us":5,"hi_us":1}`,
		`{"type":"lognormal","mean_us":10}`,
		`{"type":"pareto","shape":2}`,
		`{"type":"erlang","mean_us":10}`,
		`{"type":"histogram","edges_us":[0],"counts":[]}`,
		`{"type":"normal","mean_us":1,"stddev_us":-2}`,
		`{"type":"weibull","shape":-1,"scale_us":3}`,
		`{"type":"hyperexp","p":2,"mean_us":10,"mean2_us":100}`,
		`{"type":"hyperexp","p":0.5,"mean_us":10}`,
	}
	for _, raw := range bad {
		if _, err := ParseSpec([]byte(raw)); err == nil {
			t.Errorf("spec %s: expected error", raw)
		}
	}
}

func TestHyperExpMomentsAndSCV(t *testing.T) {
	h := NewHyperExp(0.9, 10, 500)
	mean, variance := sampleStats(t, h, sampleN)
	assertClose(t, "hyperexp mean", mean, h.Mean(), 0.03)
	wantVar := h.Mean() * h.Mean() * h.SCV()
	assertClose(t, "hyperexp var", variance, wantVar, 0.10)
	if h.SCV() <= 1 {
		t.Fatalf("H2 SCV = %v, must exceed 1", h.SCV())
	}
	// Degenerate single-phase case reduces to exponential (SCV 1).
	e := NewHyperExp(1, 100, 999)
	if e.SCV() < 0.99 || e.SCV() > 1.01 {
		t.Fatalf("single-phase SCV = %v", e.SCV())
	}
}

func TestHyperExpValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewHyperExp(-0.1, 1, 1) },
		func() { NewHyperExp(1.1, 1, 1) },
		func() { NewHyperExp(0.5, 0, 1) },
		func() { NewHyperExp(0.5, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: M/H2/1 mean waiting time matches Pollaczek–Khinchine.
func TestHyperExpPKFormula(t *testing.T) {
	h := NewHyperExp(0.8, 50, 400)
	es := h.Mean()
	es2 := es * es * (h.SCV() + 1)
	// Sanity of the moment identities used by analytic comparisons.
	r := rng.New(77)
	sum2 := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		v := h.Sample(r)
		sum2 += v * v
	}
	assertClose(t, "hyperexp E[S²]", sum2/n, es2, 0.05)
}

func TestMeansAndStringsAndGuards(t *testing.T) {
	// Mean accessors across samplers.
	if NewUniform(10, 30).Mean() != 20 {
		t.Fatal("uniform mean")
	}
	if NewNormal(7, 2).Mean() != 7 {
		t.Fatal("normal mean")
	}
	if NewErlang(3, 60).Mean() != 60 {
		t.Fatal("erlang mean")
	}
	if NewBernoulli(0.25).Mean() != 0.25 {
		t.Fatal("bernoulli mean")
	}
	if NewShifted(NewDeterministic(10), 5).Mean() != 15 {
		t.Fatal("shifted mean")
	}
	if got := NewClamped(NewDeterministic(300), 50, 150).Mean(); got != 150 {
		t.Fatalf("clamped mean hi = %v", got)
	}
	if got := NewClamped(NewDeterministic(1), 50, 150).Mean(); got != 50 {
		t.Fatalf("clamped mean lo = %v", got)
	}
	if got := NewClamped(NewDeterministic(100), 50, 150).Mean(); got != 100 {
		t.Fatalf("clamped mean mid = %v", got)
	}
	if math.IsNaN(NewLogNormal(1, 0.5).Mean()) {
		t.Fatal("lognormal mean")
	}
	// Strings used in logs.
	if NewDeterministic(5).String() == "" || NewExponential(5).String() == "" {
		t.Fatal("string forms")
	}
	// Constructor guards.
	for i, fn := range []func(){
		func() { NewUniform(5, 1) },
		func() { NewNormal(1, -1) },
		func() { NewLogNormal(1, -1) },
		func() { NewPareto(0, 1) },
		func() { NewPareto(1, 0) },
		func() { NewErlang(0, 1) },
		func() { NewErlang(1, 0) },
		func() { NewWeibull(0, 1) },
		func() { NewBernoulli(-0.1) },
		func() { NewBernoulli(1.1) },
		func() { NewScaled(nil, 1) },
		func() { NewScaled(NewDeterministic(1), -1) },
		func() { NewShifted(nil, 1) },
		func() { NewClamped(nil, 0, 1) },
		func() { NewClamped(NewDeterministic(1), 5, 1) },
		func() { NewChoice(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("guard case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFreqTableGuards(t *testing.T) {
	for i, fn := range []func(){
		func() { NewFreqTable(0, NewDeterministic(1)) },
		func() { NewFreqTable(1000, nil) },
		func() { NewFreqTable(1000, NewDeterministic(1)).Set(1200, nil) },
		func() { NewFreqTable(1000, NewDeterministic(1)).At(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("guard case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
	ft := NewFreqTable(2600, NewDeterministic(100))
	if s, nom := ft.Nominal(); nom != 2600 || s.Mean() != 100 {
		t.Fatal("nominal accessor")
	}
}
