package analytic

import (
	"math"
	"testing"
)

// TestMMkTimeoutProb pins the equilibrium per-attempt timeout probability
// P[W > t] = pWait·e^(−(kµ−λ)t) and its edge cases.
func TestMMkTimeoutProb(t *testing.T) {
	const mu, k = 100.0, 4
	pWait, cond := MMkWaitDist(240, mu, k)
	want := pWait * math.Exp(-cond*0.010)
	if got := MMkTimeoutProb(240, mu, k, 0.010); math.Abs(got-want) > 1e-12 {
		t.Fatalf("timeout prob = %v, want %v", got, want)
	}
	if got := MMkTimeoutProb(240, mu, k, 0); got != 1 {
		t.Fatalf("zero timeout prob = %v, want 1 (every attempt expires)", got)
	}
	if got := MMkTimeoutProb(500, mu, k, 0.010); got != 1 {
		t.Fatalf("saturated timeout prob = %v, want 1", got)
	}
	if got := MMkTimeoutProb(1, mu, k, 10); got > 1e-12 {
		t.Fatalf("idle long-timeout prob = %v, want ~0", got)
	}
}

// TestRetryAttempts pins E[attempts] = (1−p^(R+1))/(1−p) under a
// per-attempt failure probability p and R retries.
func TestRetryAttempts(t *testing.T) {
	cases := []struct {
		p       float64
		retries int
		want    float64
	}{
		{0, 3, 1},
		{0.5, 0, 1},
		{0.5, 1, 1.5},
		{0.5, 3, 1.875},
		{1, 3, 4},
		{1.5, 3, 4}, // clamped: p cannot exceed certainty
		{math.NaN(), 3, 1},
		{-0.2, 3, 1},
	}
	for _, c := range cases {
		if got := RetryAttempts(c.p, c.retries); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RetryAttempts(%v, %d) = %v, want %v", c.p, c.retries, got, c.want)
		}
	}
}
