package analytic

import (
	"math"
	"testing"
)

// TestErlangCBoundaries pins the probability-space face of the saturated
// sentinel: negative/zero offered load waits with probability 0, at-or-past
// saturation waits with probability 1, and in between the value is a real
// probability that grows with load.
func TestErlangCBoundaries(t *testing.T) {
	cases := []struct {
		name string
		k    int
		a    float64
		want float64 // exact expected value, or -1 for "strictly inside (0,1)"
	}{
		{"negative load", 4, -1, 0},
		{"zero load", 4, 0, 0},
		{"zero servers", 0, 0.5, 1},
		{"negative servers", -3, 0.5, 1},
		{"at saturation", 4, 4, 1},
		{"past saturation", 4, 5, 1},
		{"just below saturation", 4, 4 - 1e-9, -1},
		{"light load", 4, 0.1, -1},
		{"single server half load", 1, 0.5, 0.5}, // M/M/1: C = rho
	}
	for _, c := range cases {
		got := ErlangC(c.k, c.a)
		if c.want >= 0 {
			if math.Abs(got-c.want) > 1e-9 {
				t.Errorf("%s: ErlangC(%d, %v) = %v, want %v", c.name, c.k, c.a, got, c.want)
			}
			continue
		}
		if !(got > 0 && got < 1) {
			t.Errorf("%s: ErlangC(%d, %v) = %v, want strictly inside (0,1)", c.name, c.k, c.a, got)
		}
	}
	// Monotone in offered load on the stable side.
	prev := 0.0
	for _, a := range []float64{0.5, 1, 2, 3, 3.9, 3.99} {
		v := ErlangC(4, a)
		if v <= prev {
			t.Fatalf("ErlangC(4, %v) = %v not increasing past %v", a, v, prev)
		}
		prev = v
	}
}

// TestMMkMeanWaitBoundaries walks rho across the saturation boundary and
// through every degenerate input: everything at or past rho==1 must be the
// sentinel, everything strictly inside must be finite and nonnegative.
func TestMMkMeanWaitBoundaries(t *testing.T) {
	cases := []struct {
		name      string
		lambda    float64
		mu        float64
		k         int
		saturated bool
	}{
		{"zero load", 0, 100, 2, false},
		{"rho 0.5", 100, 100, 2, false},
		{"rho just below 1", 2*100 - 1e-6, 100, 2, false},
		{"rho exactly 1", 200, 100, 2, true},
		{"rho above 1", 201, 100, 2, true},
		{"negative lambda", -1, 100, 2, true},
		{"zero mu", 10, 0, 2, true},
		{"negative mu", 10, -5, 2, true},
		{"zero servers", 10, 100, 0, true},
		{"negative servers", 10, 100, -1, true},
	}
	for _, c := range cases {
		if got := MMkSaturated(c.lambda, c.mu, c.k); got != c.saturated {
			t.Errorf("%s: MMkSaturated(%v,%v,%d) = %v, want %v",
				c.name, c.lambda, c.mu, c.k, got, c.saturated)
		}
		w := MMkMeanWait(c.lambda, c.mu, c.k)
		if IsSaturated(w) != c.saturated {
			t.Errorf("%s: MMkMeanWait(%v,%v,%d) = %v, saturated=%v want %v",
				c.name, c.lambda, c.mu, c.k, w, IsSaturated(w), c.saturated)
		}
		if !c.saturated && (w < 0 || math.IsNaN(w)) {
			t.Errorf("%s: MMkMeanWait = %v, want finite nonnegative", c.name, w)
		}
		lq := MMkMeanQueueLength(c.lambda, c.mu, c.k)
		if IsSaturated(lq) != c.saturated {
			t.Errorf("%s: MMkMeanQueueLength saturation mismatch: %v", c.name, lq)
		}
		// The sojourn helper must propagate the sentinel, not add 1/mu to it.
		s := MMkMeanSojourn(c.lambda, c.mu, c.k)
		if c.saturated && !IsSaturated(s) {
			t.Errorf("%s: MMkMeanSojourn = %v, want sentinel", c.name, s)
		}
	}
}

// TestMG1MeanWaitBoundaries does the same walk for Pollaczek–Khinchine.
func TestMG1MeanWaitBoundaries(t *testing.T) {
	const es = 0.010 // 10 ms mean service
	const es2 = 2e-4 // exponential: E[S^2] = 2·E[S]^2
	cases := []struct {
		name      string
		lambda    float64
		saturated bool
	}{
		{"zero load", 0, false},
		{"rho 0.5", 50, false},
		{"rho just below 1", 100 - 1e-6, false},
		{"rho exactly 1", 100, true},
		{"rho above 1", 101, true},
		{"negative lambda", -1, true},
	}
	for _, c := range cases {
		if got := MG1Saturated(c.lambda, es); got != c.saturated {
			t.Errorf("%s: MG1Saturated(%v, %v) = %v, want %v", c.name, c.lambda, es, got, c.saturated)
		}
		w := MG1MeanWait(c.lambda, es, es2)
		if IsSaturated(w) != c.saturated {
			t.Errorf("%s: MG1MeanWait(%v) = %v, saturated=%v want %v",
				c.name, c.lambda, w, IsSaturated(w), c.saturated)
		}
		if !c.saturated && (w < 0 || math.IsNaN(w)) {
			t.Errorf("%s: MG1MeanWait = %v, want finite nonnegative", c.name, w)
		}
	}
	// Degenerate service time is saturated regardless of load.
	if !IsSaturated(MG1MeanWait(10, 0, 0)) {
		t.Error("MG1MeanWait with es=0 must be the sentinel")
	}
	if !IsSaturated(MG1MeanWait(10, -1, 1)) {
		t.Error("MG1MeanWait with es<0 must be the sentinel")
	}
	// With exponential service, M/G/1 must agree with M/M/1: Wq = rho/(mu-lambda).
	lambda, mu := 60.0, 100.0
	want := (lambda / mu) / (mu - lambda)
	got := MG1MeanWait(lambda, 1/mu, 2/(mu*mu))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("M/G/1 with exponential service: got %v, want M/M/1 %v", got, want)
	}
}

// TestMMkWaitDist pins the distribution-space sentinel (pWait=1, condRate=0)
// and checks consistency with the mean on the stable side:
// E[Wq] = pWait / condRate.
func TestMMkWaitDist(t *testing.T) {
	for _, c := range []struct {
		lambda, mu float64
		k          int
	}{
		{200, 100, 2}, {-1, 100, 2}, {10, 0, 2}, {10, 100, 0},
	} {
		p, r := MMkWaitDist(c.lambda, c.mu, c.k)
		if p != 1 || r != 0 {
			t.Errorf("MMkWaitDist(%v,%v,%d) = (%v,%v), want (1,0)", c.lambda, c.mu, c.k, p, r)
		}
	}
	lambda, mu, k := 150.0, 100.0, 2
	p, r := MMkWaitDist(lambda, mu, k)
	if r != float64(k)*mu-lambda {
		t.Errorf("condRate = %v, want k·mu−lambda = %v", r, float64(k)*mu-lambda)
	}
	mean := MMkMeanWait(lambda, mu, k)
	if math.Abs(p/r-mean) > 1e-12 {
		t.Errorf("pWait/condRate = %v, want mean wait %v", p/r, mean)
	}
}

// TestMMkAt checks the epoch-evaluation struct: raw Rho is uncapped past
// saturation and the mean-value fields carry the sentinel.
func TestMMkAt(t *testing.T) {
	p := MMkAt(300, 100, 2) // rho 1.5
	if !p.Saturated || p.Rho != 1.5 || p.PWait != 1 ||
		!IsSaturated(p.MeanWaitS) || !IsSaturated(p.QueueLen) {
		t.Errorf("saturated point wrong: %+v", p)
	}
	p = MMkAt(100, 100, 2) // rho 0.5
	if p.Saturated || p.Rho != 0.5 || p.PWait <= 0 || p.PWait >= 1 {
		t.Errorf("stable point wrong: %+v", p)
	}
	if math.Abs(p.QueueLen-100*p.MeanWaitS) > 1e-12 {
		t.Errorf("Little's law violated: Lq=%v, lambda·Wq=%v", p.QueueLen, 100*p.MeanWaitS)
	}
	if got := MMkAt(10, 0, 2); !got.Saturated || !math.IsInf(got.Rho, 1) {
		t.Errorf("degenerate mu: %+v", got)
	}
}

// TestClosedMMkRate checks the closed-population fixed point: bounded by
// both the population limit n/(Z+E[S]) and the bottleneck capacity k·mu,
// approaching each in the appropriate regime, and solving its own defining
// equation on the interior.
func TestClosedMMkRate(t *testing.T) {
	const es = 0.010 // 10 ms service, mu = 100
	// Degenerate inputs.
	for _, c := range []struct {
		n, think, es float64
		k            int
	}{
		{0, 1, es, 4}, {-5, 1, es, 4}, {100, 1, 0, 4}, {100, 1, es, 0}, {100, -1, es, 4},
	} {
		if got := ClosedMMkRate(c.n, c.think, c.es, c.k); got != 0 {
			t.Errorf("ClosedMMkRate(%v,%v,%v,%d) = %v, want 0", c.n, c.think, c.es, c.k, got)
		}
	}
	// Light population: rate ~ n/(Z+E[S]) (negligible queueing).
	got := ClosedMMkRate(10, 1, es, 16)
	want := 10 / (1 + es)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("light closed rate %v, want ~%v", got, want)
	}
	// Huge population: rate pinned just inside bottleneck capacity k/es.
	capacity := 4 / es
	got = ClosedMMkRate(1e6, 0.1, es, 4)
	if got > capacity || got < 0.99*capacity {
		t.Errorf("saturated closed rate %v, want within [0.99, 1]·%v", got, capacity)
	}
	// Interior: the fixed point satisfies lambda·(Z + E[S] + Wq(lambda)) = n.
	n, think, k := 300.0, 1.0, 4
	lam := ClosedMMkRate(n, think, es, k)
	w := MMkMeanWait(lam, 1/es, k)
	if IsSaturated(w) {
		t.Fatalf("interior fixed point saturated: lambda=%v", lam)
	}
	if resid := lam*(think+es+w) - n; math.Abs(resid) > 0.01*n {
		t.Errorf("fixed point residual %v at lambda=%v (n=%v)", resid, lam, n)
	}
}
