package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool {
	if b == 0 {
		return math.Abs(a) < tol
	}
	return math.Abs(a-b)/math.Abs(b) < tol
}

func TestMM1(t *testing.T) {
	// λ=7000, µ=10000 → mean sojourn 1/3000 s.
	if got := MM1MeanSojourn(7000, 10000); !close(got, 1.0/3000, 1e-12) {
		t.Fatalf("mean sojourn %v", got)
	}
	if !math.IsInf(MM1MeanSojourn(10000, 10000), 1) {
		t.Fatal("saturated M/M/1 should be infinite")
	}
	// p50 of exponential = ln2 · mean.
	if got := MM1SojournQuantile(7000, 10000, 0.5); !close(got, math.Ln2/3000, 1e-12) {
		t.Fatalf("median %v", got)
	}
	if MM1SojournQuantile(1, 2, 0) != 0 {
		t.Fatal("q=0")
	}
	if !math.IsInf(MM1SojournQuantile(1, 2, 1), 1) {
		t.Fatal("q=1")
	}
	// ρ=0.5 → mean number in system = 1.
	if got := MM1MeanQueueLength(5000, 10000); !close(got, 1, 1e-12) {
		t.Fatalf("L %v", got)
	}
	if !math.IsInf(MM1MeanQueueLength(1, 1), 1) {
		t.Fatal("saturated L")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// k=1: C = a (probability of waiting = utilization).
	if got := ErlangC(1, 0.5); !close(got, 0.5, 1e-12) {
		t.Fatalf("C(1,0.5) = %v", got)
	}
	// Saturated or invalid inputs.
	if ErlangC(0, 0.5) != 1 || ErlangC(2, 2) != 1 {
		t.Fatal("degenerate ErlangC")
	}
	// k=2, a=1 (ρ=0.5): C = 1/3 (standard textbook value).
	if got := ErlangC(2, 1); !close(got, 1.0/3, 1e-9) {
		t.Fatalf("C(2,1) = %v", got)
	}
}

func TestMMkReducesToMM1(t *testing.T) {
	lambda, mu := 700.0, 1000.0
	if got, want := MMkMeanSojourn(lambda, mu, 1), MM1MeanSojourn(lambda, mu); !close(got, want, 1e-9) {
		t.Fatalf("M/M/1 via M/M/k: %v vs %v", got, want)
	}
	if !math.IsInf(MMkMeanWait(2000, 1000, 2), 1) {
		t.Fatal("saturated M/M/k")
	}
	if !math.IsInf(MMkMeanSojourn(2000, 1000, 2), 1) {
		t.Fatal("saturated M/M/k sojourn")
	}
}

func TestMMkPoolingBeatsPartition(t *testing.T) {
	// A pooled M/M/2 beats two separate M/M/1 at the same per-server load.
	pooled := MMkMeanSojourn(1400, 1000, 2)
	split := MM1MeanSojourn(700, 1000)
	if pooled >= split {
		t.Fatalf("pooling should win: %v vs %v", pooled, split)
	}
}

func TestMD1HalfOfMM1Wait(t *testing.T) {
	// M/D/1 waiting time is half the M/M/1 waiting time at equal ρ.
	lambda, mu := 700.0, 1000.0
	d := 1 / mu
	mm1Wait := MM1MeanSojourn(lambda, mu) - 1/mu
	md1Wait := MD1MeanWait(lambda, d)
	if !close(md1Wait, mm1Wait/2, 1e-9) {
		t.Fatalf("M/D/1 wait %v, want %v", md1Wait, mm1Wait/2)
	}
	if !math.IsInf(MD1MeanWait(1000, 1.0/1000), 1) {
		t.Fatal("saturated M/D/1")
	}
	if got := MD1MeanSojourn(lambda, d); !close(got, md1Wait+d, 1e-12) {
		t.Fatalf("M/D/1 sojourn %v", got)
	}
	if !math.IsInf(MD1MeanSojourn(2000, 1.0/1000), 1) {
		t.Fatal("saturated M/D/1 sojourn")
	}
}

func TestMG1MatchesMM1AndMD1(t *testing.T) {
	lambda, mu := 700.0, 1000.0
	es := 1 / mu
	// Exponential service: E[S²] = 2/µ².
	if got, want := MG1MeanWait(lambda, es, 2/(mu*mu)), MM1MeanSojourn(lambda, mu)-es; !close(got, want, 1e-9) {
		t.Fatalf("P-K exp %v vs %v", got, want)
	}
	// Deterministic service: E[S²] = 1/µ².
	if got, want := MG1MeanWait(lambda, es, es*es), MD1MeanWait(lambda, es); !close(got, want, 1e-9) {
		t.Fatalf("P-K det %v vs %v", got, want)
	}
	if !math.IsInf(MG1MeanWait(1000, 1.0/1000, 1), 1) {
		t.Fatal("saturated M/G/1")
	}
}

func TestMaxOfExponentials(t *testing.T) {
	// n=1: mean and quantile reduce to the exponential itself.
	if got := MaxOfExponentialsMean(1, 2.5); !close(got, 2.5, 1e-12) {
		t.Fatalf("H(1) mean %v", got)
	}
	// n=3: H(3) = 1 + 1/2 + 1/3.
	if got := MaxOfExponentialsMean(3, 1); !close(got, 11.0/6, 1e-12) {
		t.Fatalf("H(3) %v", got)
	}
	if got := MaxOfExponentialsQuantile(1, 1, 1-math.Exp(-1)); !close(got, 1, 1e-9) {
		t.Fatalf("quantile n=1 %v", got)
	}
	if MaxOfExponentialsQuantile(0, 1, 0.5) != 0 {
		t.Fatal("n=0 quantile")
	}
	if !math.IsInf(MaxOfExponentialsQuantile(2, 1, 1), 1) {
		t.Fatal("q=1 quantile")
	}
	// Monotone in n.
	prev := 0.0
	for n := 1; n <= 64; n *= 2 {
		q := MaxOfExponentialsQuantile(n, 1, 0.99)
		if q <= prev {
			t.Fatalf("quantile not increasing in n at %d", n)
		}
		prev = q
	}
}

func TestTailAtScaleSlowProb(t *testing.T) {
	// Dean & Barroso: 1% slow servers, fanout 100 → 63% of requests slow.
	if got := TailAtScaleSlowProb(0.01, 100); !close(got, 1-math.Pow(0.99, 100), 1e-12) {
		t.Fatalf("slow prob %v", got)
	}
	if TailAtScaleSlowProb(0, 100) != 0 || TailAtScaleSlowProb(0.5, 0) != 0 {
		t.Fatal("degenerate")
	}
	if TailAtScaleSlowProb(1, 5) != 1 {
		t.Fatal("all slow")
	}
	if got := TailAtScaleSlowProb(0.01, 100); got < 0.63 || got > 0.64 {
		t.Fatalf("1%% × fanout 100 = %v, want ≈0.634", got)
	}
}

func TestFanoutQuantileOfMaxMatchesClosedForm(t *testing.T) {
	// Pure-exponential leaf population: compare the numeric inversion
	// against the closed form.
	mean := 1.0
	cdf := MixtureExpCDF(0, mean, 10*mean)
	for _, n := range []int{1, 4, 16} {
		got := FanoutQuantileOfMax(n, 0.99, 0, 1000, cdf)
		want := MaxOfExponentialsQuantile(n, mean, 0.99)
		if !close(got, want, 1e-6) {
			t.Fatalf("n=%d: %v vs %v", n, got, want)
		}
	}
}

func TestMixtureCDFSlowTail(t *testing.T) {
	cdf := MixtureExpCDF(0.1, 1, 10)
	if cdf(0) != 0 {
		t.Fatal("CDF(0)")
	}
	if cdf(-1) != 0 {
		t.Fatal("CDF(<0)")
	}
	// At x = 5·fastMean, fast population is essentially done but the
	// slow one is not: CDF < 1 − ~0.1·exp(−0.5).
	v := cdf(5)
	if v > 1-0.1*math.Exp(-0.5)+1e-6 {
		t.Fatalf("mixture tail too light: %v", v)
	}
	// CDF is nondecreasing.
	prev := 0.0
	for x := 0.0; x < 100; x += 0.5 {
		if c := cdf(x); c < prev {
			t.Fatal("CDF decreasing")
		} else {
			prev = c
		}
	}
}

// Property: ErlangC is in [0,1] and increasing in offered load.
func TestErlangCProperty(t *testing.T) {
	prop := func(k8 uint8, load float64) bool {
		k := int(k8%16) + 1
		if math.IsNaN(load) || math.IsInf(load, 0) {
			return true
		}
		a := math.Mod(math.Abs(load), float64(k))
		c1 := ErlangC(k, a*0.5)
		c2 := ErlangC(k, a*0.9)
		if c1 < 0 || c1 > 1 || c2 < 0 || c2 > 1 {
			return false
		}
		return c2 >= c1-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
