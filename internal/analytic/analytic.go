// Package analytic provides closed-form queueing results used as the
// validation reference for the simulator. The paper validates µqSim against
// real-server measurements; without that testbed, this repository validates
// against exact theory in the regimes where theory exists (M/M/1, M/M/k,
// M/D/1), and against the Dean & Barroso tail-at-scale probability model
// for fan-out scenarios.
package analytic

import (
	"math"
)

// MM1MeanSojourn is the mean time in system of an M/M/1 queue with arrival
// rate lambda and service rate mu (both per second): 1/(µ−λ).
// Returns +Inf at or beyond saturation.
func MM1MeanSojourn(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// MM1SojournQuantile is the q-quantile of M/M/1 time in system. Sojourn
// time is exponential with mean 1/(µ−λ), so the quantile is −ln(1−q) times
// the mean.
func MM1SojournQuantile(lambda, mu, q float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1-q) / (mu - lambda)
}

// MM1MeanQueueLength is the mean number in system: ρ/(1−ρ).
func MM1MeanQueueLength(lambda, mu float64) float64 {
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// Saturation sentinel. Every mean-value helper in this package returns
// SaturatedWait (+Inf) when the queueing system has no stationary regime
// (rho >= 1) or the inputs are degenerate (nonpositive service rate,
// negative arrival rate). Callers that must branch — the hybrid fluid
// tier switches from equilibrium injection to bottleneck shedding —
// test the result with IsSaturated instead of comparing raw floats.
var SaturatedWait = math.Inf(1)

// IsSaturated reports whether a value returned by the queueing helpers is
// the saturated sentinel: the system has no finite stationary answer.
func IsSaturated(v float64) bool { return math.IsInf(v, 1) }

// MMkSaturated reports whether an M/M/k system with arrival rate lambda
// and per-server service rate mu has no stationary regime (lambda >= k·µ,
// or degenerate inputs).
func MMkSaturated(lambda, mu float64, k int) bool {
	return k <= 0 || mu <= 0 || lambda < 0 || lambda >= float64(k)*mu
}

// MG1Saturated reports whether an M/G/1 system with arrival rate lambda
// and mean service time es has no stationary regime (λ·E[S] >= 1, or
// degenerate inputs).
func MG1Saturated(lambda, es float64) bool {
	return es <= 0 || lambda < 0 || lambda*es >= 1
}

// ErlangC is the probability an arrival waits in an M/M/k queue with k
// servers and offered load a = λ/µ (in Erlangs). At or beyond saturation
// (a >= k, or k <= 0) every arrival waits and ErlangC returns exactly 1 —
// the probability-space face of the saturated sentinel; pair it with
// MMkSaturated when the caller must distinguish "busy but stable" from
// "no stationary regime". Negative offered load returns 0.
func ErlangC(k int, a float64) float64 {
	if a <= 0 {
		return 0
	}
	if k <= 0 {
		return 1
	}
	if a >= float64(k) {
		return 1
	}
	// Compute iteratively to avoid factorial overflow:
	// B(0)=1; B(j)=a·B(j−1)/(j+a·B(j−1)) is Erlang-B; then
	// C = k·B /(k − a(1−B)).
	b := 1.0
	for j := 1; j <= k; j++ {
		b = a * b / (float64(j) + a*b)
	}
	return float64(k) * b / (float64(k) - a*(1-b))
}

// MMkMeanWait is the mean queueing delay (excluding service) of M/M/k:
// C(k,a) / (kµ − λ). Saturated or degenerate inputs return the
// SaturatedWait sentinel (test with IsSaturated).
func MMkMeanWait(lambda, mu float64, k int) float64 {
	if MMkSaturated(lambda, mu, k) {
		return SaturatedWait
	}
	a := lambda / mu
	return ErlangC(k, a) / (float64(k)*mu - lambda)
}

// MMkWaitDist describes the full M/M/k waiting-time distribution at one
// operating point: an arrival waits with probability pWait (Erlang-C)
// and, conditioned on waiting, the wait is exponential with rate
// condRate = kµ − λ per second. This is what a sampled-foreground tier
// needs to draw per-request queue waits consistent with a fluid
// background load. Saturated or degenerate inputs return (1, 0): every
// arrival waits, unboundedly — the distribution-space face of the
// saturated sentinel (condRate == 0 is the branch condition).
func MMkWaitDist(lambda, mu float64, k int) (pWait, condRate float64) {
	if MMkSaturated(lambda, mu, k) {
		return 1, 0
	}
	return ErlangC(k, lambda/mu), float64(k)*mu - lambda
}

// MMkTimeoutProb is the probability an M/M/k queue wait exceeds timeoutS
// seconds: P(W > t) = C(k, a)·e^{−(kµ−λ)t}, the tail of the Erlang-C
// mixed distribution (an atom at zero plus an Exp(kµ−λ) excess). The
// timeout is compared against queueing delay only — an attempt that
// reaches a server is assumed to finish — which makes it the natural
// per-attempt failure probability for a mean-field retry model. Saturated
// or degenerate inputs return 1: every attempt waits forever and times
// out. A non-positive timeout with retries configured would mean every
// attempt fails instantly; it also returns 1.
func MMkTimeoutProb(lambda, mu float64, k int, timeoutS float64) float64 {
	if timeoutS <= 0 {
		return 1
	}
	pWait, condRate := MMkWaitDist(lambda, mu, k)
	if condRate <= 0 {
		return pWait // saturated: (1, 0) — the whole mass times out
	}
	return pWait * math.Exp(-condRate*timeoutS)
}

// RetryAttempts is the expected number of attempts of an RPC edge that
// retries up to `retries` times with per-attempt failure probability p:
// E[attempts] = Σ_{j=0..retries} p^j = (1 − p^{retries+1}) / (1 − p).
// This is the mean-field amplification factor retry storms apply to a
// service's offered rate. p is clamped into [0, 1]; p == 1 returns the
// full retries+1 budget.
func RetryAttempts(p float64, retries int) float64 {
	if retries <= 0 || p <= 0 || math.IsNaN(p) {
		return 1
	}
	if p >= 1 {
		return float64(retries + 1)
	}
	return (1 - math.Pow(p, float64(retries+1))) / (1 - p)
}

// MMkMeanQueueLength is the mean number of waiting (not in-service) jobs
// of M/M/k by Little's law: Lq = λ·Wq. Saturated inputs return the
// sentinel.
func MMkMeanQueueLength(lambda, mu float64, k int) float64 {
	w := MMkMeanWait(lambda, mu, k)
	if IsSaturated(w) {
		return SaturatedWait
	}
	return lambda * w
}

// MMkEquilibrium evaluates the stationary M/M/k state at one (λ, µ, k)
// operating point — the per-epoch computation of a piecewise-constant
// fluid trajectory, where the arrival envelope and the server count are
// frozen within an epoch and re-evaluated at its boundary. Saturated
// epochs report Saturated true with the mean-value fields pinned to the
// sentinel; Rho is always the raw λ/(kµ) (it exceeds 1 past saturation,
// which is exactly what a bottleneck-shedding law wants to see).
type MMkPoint struct {
	Rho       float64 // offered utilization λ/(kµ), uncapped
	PWait     float64 // P(wait > 0): Erlang-C, 1 when saturated
	MeanWaitS float64 // mean queue wait in seconds; sentinel when saturated
	QueueLen  float64 // mean waiting jobs Lq; sentinel when saturated
	Saturated bool
}

// MMkAt computes the equilibrium point; see MMkPoint.
func MMkAt(lambda, mu float64, k int) MMkPoint {
	p := MMkPoint{Saturated: MMkSaturated(lambda, mu, k)}
	if mu > 0 && k > 0 {
		p.Rho = lambda / (float64(k) * mu)
	} else if lambda > 0 {
		p.Rho = math.Inf(1)
	}
	if p.Saturated {
		p.PWait = 1
		p.MeanWaitS = SaturatedWait
		p.QueueLen = SaturatedWait
		return p
	}
	p.PWait = ErlangC(k, lambda/mu)
	p.MeanWaitS = MMkMeanWait(lambda, mu, k)
	p.QueueLen = lambda * p.MeanWaitS
	return p
}

// ClosedMMkRate solves the closed-population fixed point of n users
// cycling through think (mean thinkS seconds) and one M/M/k service
// (mean service time es seconds, k servers): λ = n / (thinkS + es +
// Wq(λ)). The iteration is damped and always converges to the unique
// fixed point; the returned rate never exceeds the bottleneck capacity
// k/es (a closed loop self-limits — users queue rather than vanish, so
// there is no shed flow). Degenerate inputs return 0.
func ClosedMMkRate(n, thinkS, es float64, k int) float64 {
	if n <= 0 || es <= 0 || k <= 0 || thinkS < 0 {
		return 0
	}
	mu := 1 / es
	capacity := float64(k) * mu
	// Start from the no-queueing estimate, clamped inside capacity.
	lam := math.Min(n/(thinkS+es), 0.999*capacity)
	for i := 0; i < 64; i++ {
		w := MMkMeanWait(lam, mu, k)
		if IsSaturated(w) {
			lam = 0.999 * capacity
			continue
		}
		next := n / (thinkS + es + w)
		if next >= capacity {
			next = 0.999 * capacity
		}
		lam = 0.5*lam + 0.5*next
	}
	return lam
}

// MMkMeanSojourn is the mean time in system of M/M/k.
func MMkMeanSojourn(lambda, mu float64, k int) float64 {
	w := MMkMeanWait(lambda, mu, k)
	if math.IsInf(w, 1) {
		return w
	}
	return w + 1/mu
}

// MD1MeanWait is the mean queueing delay of M/D/1 (deterministic service
// time d): ρ·d / (2(1−ρ)) — the Pollaczek–Khinchine formula with zero
// service variance.
func MD1MeanWait(lambda, d float64) float64 {
	rho := lambda * d
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho * d / (2 * (1 - rho))
}

// MD1MeanSojourn is the mean time in system of M/D/1.
func MD1MeanSojourn(lambda, d float64) float64 {
	w := MD1MeanWait(lambda, d)
	if math.IsInf(w, 1) {
		return w
	}
	return w + d
}

// MG1MeanWait is the Pollaczek–Khinchine mean queueing delay of M/G/1 with
// service mean es and second moment es2: λ·E[S²] / (2(1−ρ)). Saturated or
// degenerate inputs return the SaturatedWait sentinel (test with
// IsSaturated).
func MG1MeanWait(lambda, es, es2 float64) float64 {
	if MG1Saturated(lambda, es) {
		return SaturatedWait
	}
	return lambda * es2 / (2 * (1 - lambda*es))
}

// MaxOfExponentialsMean is E[max of n iid Exp(mean)] = mean·H(n), the
// harmonic number — the fork-join fan-in latency at zero load.
func MaxOfExponentialsMean(n int, mean float64) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return mean * h
}

// MaxOfExponentialsQuantile is the q-quantile of the max of n iid
// exponentials with the given mean: −mean·ln(1 − q^{1/n}).
func MaxOfExponentialsQuantile(n int, mean, q float64) float64 {
	if n <= 0 || q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return -mean * math.Log(1-math.Pow(q, 1/float64(n)))
}

// TailAtScaleSlowProb is the Dean & Barroso back-of-envelope: with a
// fraction p of servers slow, the probability that a request fanning out to
// n servers touches at least one slow server is 1 − (1−p)^n.
func TailAtScaleSlowProb(p float64, n int) float64 {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return 1 - math.Pow(1-p, float64(n))
}

// FanoutQuantileOfMax computes the q-quantile of the max of n iid latency
// draws with CDF F, by numerically inverting F(x)^n = q over [lo, hi] with
// bisection. Useful for mixed fast/slow leaf populations.
func FanoutQuantileOfMax(n int, q, lo, hi float64, cdf func(x float64) float64) float64 {
	if n <= 0 || q <= 0 {
		return lo
	}
	target := math.Pow(q, 1/float64(n))
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MixtureExpCDF is the CDF of a two-population exponential mixture: with
// probability pSlow the mean is slowMean, otherwise fastMean — the
// tail-at-scale leaf latency model (a 10×-slow machine serves a request
// with 10× the mean).
func MixtureExpCDF(pSlow, fastMean, slowMean float64) func(x float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return (1-pSlow)*(1-math.Exp(-x/fastMean)) + pSlow*(1-math.Exp(-x/slowMean))
	}
}
