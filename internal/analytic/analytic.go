// Package analytic provides closed-form queueing results used as the
// validation reference for the simulator. The paper validates µqSim against
// real-server measurements; without that testbed, this repository validates
// against exact theory in the regimes where theory exists (M/M/1, M/M/k,
// M/D/1), and against the Dean & Barroso tail-at-scale probability model
// for fan-out scenarios.
package analytic

import (
	"math"
)

// MM1MeanSojourn is the mean time in system of an M/M/1 queue with arrival
// rate lambda and service rate mu (both per second): 1/(µ−λ).
// Returns +Inf at or beyond saturation.
func MM1MeanSojourn(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// MM1SojournQuantile is the q-quantile of M/M/1 time in system. Sojourn
// time is exponential with mean 1/(µ−λ), so the quantile is −ln(1−q) times
// the mean.
func MM1SojournQuantile(lambda, mu, q float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1-q) / (mu - lambda)
}

// MM1MeanQueueLength is the mean number in system: ρ/(1−ρ).
func MM1MeanQueueLength(lambda, mu float64) float64 {
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// ErlangC is the probability an arrival waits in an M/M/k queue with k
// servers and offered load a = λ/µ (in Erlangs).
func ErlangC(k int, a float64) float64 {
	if k <= 0 {
		return 1
	}
	if a >= float64(k) {
		return 1
	}
	// Compute iteratively to avoid factorial overflow:
	// B(0)=1; B(j)=a·B(j−1)/(j+a·B(j−1)) is Erlang-B; then
	// C = k·B /(k − a(1−B)).
	b := 1.0
	for j := 1; j <= k; j++ {
		b = a * b / (float64(j) + a*b)
	}
	return float64(k) * b / (float64(k) - a*(1-b))
}

// MMkMeanWait is the mean queueing delay (excluding service) of M/M/k:
// C(k,a) / (kµ − λ).
func MMkMeanWait(lambda, mu float64, k int) float64 {
	if lambda >= float64(k)*mu {
		return math.Inf(1)
	}
	a := lambda / mu
	return ErlangC(k, a) / (float64(k)*mu - lambda)
}

// MMkMeanSojourn is the mean time in system of M/M/k.
func MMkMeanSojourn(lambda, mu float64, k int) float64 {
	w := MMkMeanWait(lambda, mu, k)
	if math.IsInf(w, 1) {
		return w
	}
	return w + 1/mu
}

// MD1MeanWait is the mean queueing delay of M/D/1 (deterministic service
// time d): ρ·d / (2(1−ρ)) — the Pollaczek–Khinchine formula with zero
// service variance.
func MD1MeanWait(lambda, d float64) float64 {
	rho := lambda * d
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho * d / (2 * (1 - rho))
}

// MD1MeanSojourn is the mean time in system of M/D/1.
func MD1MeanSojourn(lambda, d float64) float64 {
	w := MD1MeanWait(lambda, d)
	if math.IsInf(w, 1) {
		return w
	}
	return w + d
}

// MG1MeanWait is the Pollaczek–Khinchine mean queueing delay of M/G/1 with
// service mean es and second moment es2: λ·E[S²] / (2(1−ρ)).
func MG1MeanWait(lambda, es, es2 float64) float64 {
	rho := lambda * es
	if rho >= 1 {
		return math.Inf(1)
	}
	return lambda * es2 / (2 * (1 - rho))
}

// MaxOfExponentialsMean is E[max of n iid Exp(mean)] = mean·H(n), the
// harmonic number — the fork-join fan-in latency at zero load.
func MaxOfExponentialsMean(n int, mean float64) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return mean * h
}

// MaxOfExponentialsQuantile is the q-quantile of the max of n iid
// exponentials with the given mean: −mean·ln(1 − q^{1/n}).
func MaxOfExponentialsQuantile(n int, mean, q float64) float64 {
	if n <= 0 || q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return -mean * math.Log(1-math.Pow(q, 1/float64(n)))
}

// TailAtScaleSlowProb is the Dean & Barroso back-of-envelope: with a
// fraction p of servers slow, the probability that a request fanning out to
// n servers touches at least one slow server is 1 − (1−p)^n.
func TailAtScaleSlowProb(p float64, n int) float64 {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return 1 - math.Pow(1-p, float64(n))
}

// FanoutQuantileOfMax computes the q-quantile of the max of n iid latency
// draws with CDF F, by numerically inverting F(x)^n = q over [lo, hi] with
// bisection. Useful for mixed fast/slow leaf populations.
func FanoutQuantileOfMax(n int, q, lo, hi float64, cdf func(x float64) float64) float64 {
	if n <= 0 || q <= 0 {
		return lo
	}
	target := math.Pow(q, 1/float64(n))
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MixtureExpCDF is the CDF of a two-population exponential mixture: with
// probability pSlow the mean is slowMean, otherwise fastMean — the
// tail-at-scale leaf latency model (a 10×-slow machine serves a request
// with 10× the mean).
func MixtureExpCDF(pSlow, fastMean, slowMean float64) func(x float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return (1-pSlow)*(1-math.Exp(-x/fastMean)) + pSlow*(1-math.Exp(-x/slowMean))
	}
}
