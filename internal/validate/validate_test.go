package validate

import (
	"testing"

	"uqsim/internal/des"
)

func TestCheckPassLogic(t *testing.T) {
	if !(Check{Measured: 1.05, Expected: 1.0, Tolerance: 0.08}).Pass() {
		t.Fatal("5% off with 8% tolerance should pass")
	}
	if (Check{Measured: 1.2, Expected: 1.0, Tolerance: 0.08}).Pass() {
		t.Fatal("20% off should fail")
	}
	if !(Check{Measured: 0.001, Expected: 0, Tolerance: 0.01}).Pass() {
		t.Fatal("zero-expected case")
	}
	c := Check{Measured: 1.1, Expected: 1.0}
	if e := c.Error(); e < 0.099 || e > 0.101 {
		t.Fatalf("error = %v", e)
	}
}

// short runs a check set with a reduced window; tolerances in the checks
// assume the default 20s, so use a 10s window and pad with a small factor
// by asserting Error() < Tolerance*1.5.
func assertChecks(t *testing.T, cs []Check, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if c.Error() > c.Tolerance*1.5 {
			t.Errorf("%s: measured %v vs expected %v (err %.1f%%)",
				c.Name, c.Measured, c.Expected, 100*c.Error())
		}
	}
}

func opts() Options { return Options{Seed: 3, Duration: 10 * des.Second} }

func TestMM1Validation(t *testing.T) {
	cs, err := MM1(opts(), 0.7)
	assertChecks(t, cs, err)
}

func TestMMkValidation(t *testing.T) {
	cs, err := MMk(opts(), 4, 0.7)
	assertChecks(t, cs, err)
}

func TestMD1Validation(t *testing.T) {
	cs, err := MD1(opts(), 0.8)
	assertChecks(t, cs, err)
}

func TestMG1ErlangValidation(t *testing.T) {
	cs, err := MG1Erlang(opts(), 0.8)
	assertChecks(t, cs, err)
}

func TestForkJoinValidation(t *testing.T) {
	cs, err := ForkJoin(opts(), 8)
	assertChecks(t, cs, err)
}

func TestSuiteRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	cs, err := Suite(Options{Seed: 3, Duration: 5 * des.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) < 15 {
		t.Fatalf("suite produced %d checks", len(cs))
	}
	failed := 0
	for _, c := range cs {
		if c.Error() > c.Tolerance*2 { // 5s window: loose gate
			t.Logf("loose check: %s err %.1f%%", c.Name, 100*c.Error())
			failed++
		}
	}
	if failed > 2 {
		t.Fatalf("%d of %d checks far off", failed, len(cs))
	}
}
