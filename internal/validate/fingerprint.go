package validate

import (
	"fmt"
	"sort"

	"uqsim/internal/sim"
)

// Fingerprint flattens everything a Report asserts about a run into one
// comparable string: every counter, the latency quantiles, the sorted
// per-service error breakdowns, and the per-instance outcome counts. Two
// runs with equal fingerprints observed the same simulation — the equality
// the determinism tests and the chaos harness's sim-vs-pdes invariant
// assert, and the identity a replayed corpus scenario must reproduce
// bit-for-bit.
func Fingerprint(rep *sim.Report) string {
	fp := fmt.Sprintf("arr=%d comp=%d to=%d shed=%d drop=%d ddl=%d brk=%d retry=%d hedge=%d/%d cancel=%d waste=%d inflight=%d unreach=%d ldrop=%d ldup=%d xr=%d stale=%d mean=%v p50=%v p99=%v",
		rep.Arrivals, rep.Completions, rep.Timeouts, rep.Shed, rep.Dropped,
		rep.DeadlineExpired, rep.BreakerFastFails, rep.Retries,
		rep.HedgesIssued, rep.HedgeWins, rep.CanceledWork, rep.WastedWork, rep.InFlight,
		rep.Unreachable, rep.LinkDrops, rep.LinkDups,
		rep.CrossRegionCalls, rep.StaleReads,
		rep.Latency.Mean(), rep.Latency.P50(), rep.Latency.P99())
	svcs := make([]string, 0, len(rep.Errors))
	for svc := range rep.Errors {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	for _, svc := range svcs {
		fp += fmt.Sprintf(" %s=%+v", svc, *rep.Errors[svc])
	}
	for _, ir := range rep.Instances {
		fp += fmt.Sprintf(" %s:%d/%d/%d/%d/%d",
			ir.Name, ir.Completed, ir.Shed, ir.Dropped, ir.Canceled, ir.Wasted)
	}
	// Hybrid-fidelity background accounting, appended only when present so
	// full-DES fingerprints — including every committed chaos corpus
	// scenario — keep their historical byte format.
	if rep.BackgroundArrivals+rep.BackgroundShed+rep.BackgroundUnreachable > 0 {
		fp += fmt.Sprintf(" bg=%d/%d/%d/%d",
			rep.BackgroundArrivals, rep.BackgroundCompletions,
			rep.BackgroundShed, rep.BackgroundUnreachable)
	}
	if len(rep.BackgroundShedByCause) > 0 {
		causes := make([]string, 0, len(rep.BackgroundShedByCause))
		for c := range rep.BackgroundShedByCause {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		fp += " bgcause="
		for i, c := range causes {
			if i > 0 {
				fp += ","
			}
			fp += fmt.Sprintf("%s:%d", c, rep.BackgroundShedByCause[c])
		}
	}
	return fp
}
