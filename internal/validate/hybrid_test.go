package validate

import (
	"strings"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/hybrid"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

// hybridScenario builds the shared two-service scenario for the
// fingerprint-identity properties; cfg nil runs pure full DES.
func hybridScenario(seed uint64, cfg *hybrid.Config) (*sim.Report, error) {
	s := sim.New(sim.Options{Seed: seed})
	s.AddMachine("m0", 6, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("front", dist.NewExponential(100*1000)),
		sim.RoundRobin, sim.Placement{Machine: "m0", Cores: 2}); err != nil {
		return nil, err
	}
	if _, err := s.Deploy(service.SingleStage("back", dist.NewExponential(200*1000)),
		sim.RoundRobin, sim.Placement{Machine: "m0", Cores: 4}); err != nil {
		return nil, err
	}
	if err := s.SetTopology(graph.Linear("main", "front", "back")); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(8000), Timeout: 50 * des.Millisecond})
	if cfg != nil {
		s.SetHybrid(*cfg)
	}
	return s.Run(200*des.Millisecond, des.Second)
}

// TestSampleRateOneBitIdentical is the ISSUE's equivalence property: a
// hybrid configuration at sample rate 1.0 must be byte-for-byte
// indistinguishable from a run with no hybrid engine attached — no extra
// random draws, no thinning, no background accounting, same fingerprint.
func TestSampleRateOneBitIdentical(t *testing.T) {
	full, err := hybridScenario(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	one, err := hybridScenario(11, &hybrid.Config{SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	fpFull, fpOne := Fingerprint(full), Fingerprint(one)
	if fpFull != fpOne {
		t.Fatalf("sample rate 1.0 perturbed the run:\nfull:   %s\nhybrid: %s", fpFull, fpOne)
	}
	if strings.Contains(fpFull, " bg=") {
		t.Fatalf("full-DES fingerprint grew a background section: %s", fpFull)
	}
	if one.SampleRate != 1 {
		t.Fatalf("inert hybrid report sample rate %v, want 1", one.SampleRate)
	}
}

// TestHybridFingerprintDeterminism: the fingerprint covers the hybrid
// tier's sampling and wait-draw streams — same seed reproduces the run
// bit-for-bit, a different seed diverges.
func TestHybridFingerprintDeterminism(t *testing.T) {
	cfg := &hybrid.Config{SampleRate: 0.2}
	a, err := hybridScenario(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hybridScenario(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("same-seed hybrid runs diverged:\n%s\n%s", Fingerprint(a), Fingerprint(b))
	}
	c, err := hybridScenario(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different seeds produced identical hybrid fingerprints")
	}
	if !strings.Contains(Fingerprint(a), " bg=") {
		t.Fatalf("hybrid fingerprint missing background section: %s", Fingerprint(a))
	}
	if err := Conservation(a); err != nil {
		t.Fatal(err)
	}
}
