package validate

import (
	"fmt"

	"uqsim/internal/sim"
)

// Leaked is the conservation residue of a run report: arrivals minus
// every terminal bucket (completions, timeouts, deadline expiries, shed,
// dropped, unreachable) minus in-flight work. Nonzero means requests
// vanished from — or were double-counted in — the accounting.
func Leaked(rep *sim.Report) int64 {
	return int64(rep.Arrivals) -
		int64(rep.Completions+rep.Timeouts+rep.DeadlineExpired+rep.Shed+rep.Dropped+rep.Unreachable) -
		int64(rep.InFlight)
}

// Conservation asserts the identity arrivals == completions + timeouts +
// deadline + shed + dropped + unreachable + in-flight on a run report,
// returning a descriptive error when it fails. Every experiment asserts
// it on every report it produces.
func Conservation(rep *sim.Report) error {
	if l := Leaked(rep); l != 0 {
		return fmt.Errorf("validate: conservation violated: %d requests leaked "+
			"(arrivals=%d completions=%d timeouts=%d deadline=%d shed=%d dropped=%d unreachable=%d inflight=%d)",
			l, rep.Arrivals, rep.Completions, rep.Timeouts, rep.DeadlineExpired,
			rep.Shed, rep.Dropped, rep.Unreachable, rep.InFlight)
	}
	// The hybrid fluid tier keeps its own books: background traffic never
	// enters the sampled buckets above, and must balance on its own.
	if rep.BackgroundArrivals != rep.BackgroundCompletions+rep.BackgroundShed+rep.BackgroundUnreachable {
		return fmt.Errorf("validate: background conservation violated: arrivals=%d != completions=%d + shed=%d + unreachable=%d",
			rep.BackgroundArrivals, rep.BackgroundCompletions, rep.BackgroundShed, rep.BackgroundUnreachable)
	}
	// Per-fault attribution must partition the background losses exactly:
	// apportionment uses largest-remainder rounding precisely so no unit
	// of shed or unreachable flow goes uncredited or double-credited.
	if len(rep.BackgroundShedByCause) > 0 {
		var byCause uint64
		for _, n := range rep.BackgroundShedByCause {
			byCause += n
		}
		if lost := rep.BackgroundShed + rep.BackgroundUnreachable; byCause != lost {
			return fmt.Errorf("validate: background attribution violated: by-cause sum %d != shed=%d + unreachable=%d",
				byCause, rep.BackgroundShed, rep.BackgroundUnreachable)
		}
	}
	return nil
}
