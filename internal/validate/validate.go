// Package validate is the automated counterpart of the paper's §IV: since
// no hardware testbed is available, the simulator is validated against
// closed-form queueing theory in every regime where exact results exist.
// Each check builds a scenario, runs it, and compares measured statistics
// to the analytic value within a tolerance that accounts for sampling
// noise and histogram resolution.
//
// The suite doubles as an experiment ("validation" in the registry) so the
// evidence ships with every result set.
package validate

import (
	"fmt"
	"math"

	"uqsim/internal/analytic"
	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

// Check is one validation case.
type Check struct {
	Name      string
	Measured  float64
	Expected  float64
	Tolerance float64 // relative
}

// Pass reports whether the measurement is within tolerance.
func (c Check) Pass() bool {
	if c.Expected == 0 {
		return math.Abs(c.Measured) <= c.Tolerance
	}
	return math.Abs(c.Measured-c.Expected)/math.Abs(c.Expected) <= c.Tolerance
}

// Error reports the relative deviation.
func (c Check) Error() float64 {
	if c.Expected == 0 {
		return math.Abs(c.Measured)
	}
	return math.Abs(c.Measured-c.Expected) / math.Abs(c.Expected)
}

// Options configures the suite.
type Options struct {
	Seed uint64
	// Duration is the measurement window per check (default 20s); the
	// tolerances assume the default.
	Duration des.Time
}

func (o Options) duration() des.Time {
	if o.Duration <= 0 {
		return 20 * des.Second
	}
	return o.Duration
}

// singleQueue builds and runs a one-service scenario and returns the
// report.
func singleQueue(o Options, svcSampler dist.Sampler, cores int, qps float64) (*sim.Report, error) {
	s := sim.New(sim.Options{Seed: o.Seed})
	s.AddMachine("m0", cores+2, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", svcSampler), sim.RoundRobin,
		sim.Placement{Machine: "m0", Cores: cores}); err != nil {
		return nil, err
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		return nil, err
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(qps)})
	warm := o.duration() / 10
	return s.Run(warm, o.duration())
}

// heavyTrafficFactor lengthens measurement windows near saturation: the
// relaxation time of an M/M/1 queue grows like 1/(1−ρ)², so a fixed
// window that suffices at ρ=0.5 is far too short at ρ=0.9.
func heavyTrafficFactor(rho float64) float64 {
	f := 1 / (4 * (1 - rho) * (1 - rho))
	if f < 1 {
		return 1
	}
	if f > 30 {
		return 30
	}
	return f
}

// MM1 validates mean and p99 sojourn time of M/M/1 at the given
// utilization.
func MM1(o Options, rho float64) ([]Check, error) {
	mu := 10000.0
	lambda := rho * mu
	scaled := o
	scaled.Duration = des.Time(float64(o.duration()) * heavyTrafficFactor(rho))
	rep, err := singleQueue(scaled, dist.NewExponential(1e9/mu), 1, lambda)
	if err != nil {
		return nil, err
	}
	return []Check{
		{
			Name:      fmt.Sprintf("M/M/1 ρ=%.2f mean sojourn", rho),
			Measured:  rep.Latency.Mean().Seconds(),
			Expected:  analytic.MM1MeanSojourn(lambda, mu),
			Tolerance: 0.08,
		},
		{
			Name:      fmt.Sprintf("M/M/1 ρ=%.2f p99 sojourn", rho),
			Measured:  rep.Latency.P99().Seconds(),
			Expected:  analytic.MM1SojournQuantile(lambda, mu, 0.99),
			Tolerance: 0.12,
		},
	}, nil
}

// MMk validates mean sojourn of M/M/k.
func MMk(o Options, k int, rho float64) ([]Check, error) {
	mu := 10000.0
	lambda := rho * mu * float64(k)
	rep, err := singleQueue(o, dist.NewExponential(1e9/mu), k, lambda)
	if err != nil {
		return nil, err
	}
	return []Check{{
		Name:      fmt.Sprintf("M/M/%d ρ=%.2f mean sojourn", k, rho),
		Measured:  rep.Latency.Mean().Seconds(),
		Expected:  analytic.MMkMeanSojourn(lambda, mu, k),
		Tolerance: 0.08,
	}}, nil
}

// MD1 validates mean sojourn of M/D/1 (Pollaczek–Khinchine with zero
// service variance).
func MD1(o Options, rho float64) ([]Check, error) {
	d := 100 * des.Microsecond
	lambda := rho / d.Seconds()
	rep, err := singleQueue(o, dist.NewDeterministic(float64(d)), 1, lambda)
	if err != nil {
		return nil, err
	}
	return []Check{{
		Name:      fmt.Sprintf("M/D/1 ρ=%.2f mean sojourn", rho),
		Measured:  rep.Latency.Mean().Seconds(),
		Expected:  analytic.MD1MeanSojourn(lambda, d.Seconds()),
		Tolerance: 0.08,
	}}, nil
}

// MG1 validates the Pollaczek–Khinchine formula with an Erlang-4 service
// (squared coefficient of variation 1/4).
func MG1Erlang(o Options, rho float64) ([]Check, error) {
	mean := 100 * des.Microsecond
	lambda := rho / mean.Seconds()
	rep, err := singleQueue(o, dist.NewErlang(4, float64(mean)), 1, lambda)
	if err != nil {
		return nil, err
	}
	es := mean.Seconds()
	es2 := es * es * (1 + 0.25) // E[S²] = Var + mean² = mean²(1/k + 1)
	return []Check{{
		Name:      fmt.Sprintf("M/E4/1 ρ=%.2f mean sojourn", rho),
		Measured:  rep.Latency.Mean().Seconds(),
		Expected:  analytic.MG1MeanWait(lambda, es, es2) + es,
		Tolerance: 0.08,
	}}, nil
}

// ForkJoin validates the zero-load fan-out/fan-in latency: max of n iid
// exponentials.
func ForkJoin(o Options, n int) ([]Check, error) {
	s := sim.New(sim.Options{Seed: o.Seed})
	const perMachine = 32
	nM := (n + perMachine - 1) / perMachine
	for i := 0; i < nM; i++ {
		s.AddMachine(fmt.Sprintf("m%d", i), perMachine, cluster.FreqSpec{})
	}
	s.AddMachine("root", 4, cluster.FreqSpec{})
	var placements []sim.Placement
	for i := 0; i < n; i++ {
		placements = append(placements, sim.Placement{
			Machine: fmt.Sprintf("m%d", i/perMachine), Cores: 1,
		})
	}
	mean := des.Millisecond
	if _, err := s.Deploy(service.SingleStage("leaf", dist.NewExponential(float64(mean))),
		sim.RoundRobin, placements...); err != nil {
		return nil, err
	}
	if _, err := s.Deploy(service.SingleStage("rootsvc", dist.NewDeterministic(1)),
		sim.RoundRobin, sim.Placement{Machine: "root", Cores: 2}); err != nil {
		return nil, err
	}
	nodes := []graph.Node{{ID: 0, Service: "rootsvc", Instance: -1}}
	for i := 0; i < n; i++ {
		nodes[0].Children = append(nodes[0].Children, i+1)
		nodes = append(nodes, graph.Node{ID: i + 1, Service: "leaf", Instance: i, Children: []int{n + 1}})
	}
	nodes = append(nodes, graph.Node{ID: n + 1, Service: "rootsvc", Instance: -1})
	if err := s.SetTopology(&graph.Topology{
		Trees: []graph.Tree{{Name: "fan", Weight: 1, Root: 0, Nodes: nodes}},
	}); err != nil {
		return nil, err
	}
	// Very light load so queueing is negligible.
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(20)})
	rep, err := s.Run(0, o.duration())
	if err != nil {
		return nil, err
	}
	return []Check{
		{
			Name:      fmt.Sprintf("fork-join n=%d mean of max", n),
			Measured:  rep.Latency.Mean().Seconds(),
			Expected:  analytic.MaxOfExponentialsMean(n, mean.Seconds()) / (1 - 0.02*float64(0)),
			Tolerance: 0.10,
		},
		{
			Name:      fmt.Sprintf("fork-join n=%d p99 of max", n),
			Measured:  rep.Latency.P99().Seconds(),
			Expected:  analytic.MaxOfExponentialsQuantile(n, mean.Seconds(), 0.99),
			Tolerance: 0.15,
		},
	}, nil
}

// Suite runs the whole validation battery.
func Suite(o Options) ([]Check, error) {
	var out []Check
	add := func(cs []Check, err error) error {
		if err != nil {
			return err
		}
		out = append(out, cs...)
		return nil
	}
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.9} {
		if err := add(MM1(o, rho)); err != nil {
			return nil, err
		}
	}
	for _, k := range []int{2, 4, 8} {
		if err := add(MMk(o, k, 0.7)); err != nil {
			return nil, err
		}
	}
	for _, rho := range []float64{0.5, 0.8} {
		if err := add(MD1(o, rho)); err != nil {
			return nil, err
		}
		if err := add(MG1Erlang(o, rho)); err != nil {
			return nil, err
		}
	}
	for _, n := range []int{2, 8, 32} {
		if err := add(ForkJoin(o, n)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
