// Package rng provides seeded, splittable random-number streams for
// reproducible simulation runs. Every stochastic component of the simulator
// (arrival processes, stage service times, path choices, slow-server
// selection) draws from its own stream, so adding a component never perturbs
// the draws of another — a property the validation tests rely on.
package rng

import (
	"hash/fnv"
	"math/rand/v2"
)

// Source is a deterministic random stream. It is a thin alias over
// *rand.Rand (math/rand/v2, PCG-backed) so call sites read naturally.
type Source = rand.Rand

// New returns a stream seeded from the given 64-bit seed.
func New(seed uint64) *Source {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Splitter derives independent child streams from one root seed, keyed by
// name. Identical (seed, name) pairs always produce identical streams,
// regardless of derivation order.
type Splitter struct {
	seed uint64
}

// NewSplitter returns a splitter rooted at seed.
func NewSplitter(seed uint64) *Splitter { return &Splitter{seed: seed} }

// Seed reports the root seed.
func (s *Splitter) Seed() uint64 { return s.seed }

// Stream derives the child stream named by the given labels. Labels are
// hashed, so any stable identifier (service name, stage name, index) works.
func (s *Splitter) Stream(labels ...string) *Source {
	h := fnv.New64a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return rand.New(rand.NewPCG(s.seed, h.Sum64()|1))
}

// Child derives a nested splitter, useful for per-instance namespaces.
func (s *Splitter) Child(labels ...string) *Splitter {
	h := fnv.New64a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return &Splitter{seed: s.seed ^ h.Sum64()}
}
