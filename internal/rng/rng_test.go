package rng

import (
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give identical streams")
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds collided %d/64 times", same)
	}
}

func TestSplitterStability(t *testing.T) {
	s1 := NewSplitter(7)
	s2 := NewSplitter(7)
	// Derivation order must not matter.
	a1 := s1.Stream("svc", "stage0")
	_ = s1.Stream("other")
	b1 := s1.Stream("svc", "stage0")
	a2 := s2.Stream("svc", "stage0")
	v1, v1b, v2 := a1.Uint64(), b1.Uint64(), a2.Uint64()
	if v1 != v2 || v1 != v1b {
		t.Fatal("identical labels should yield identical streams")
	}
}

func TestSplitterIndependence(t *testing.T) {
	s := NewSplitter(7)
	a := s.Stream("a")
	b := s.Stream("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct labels collided %d/64 times", same)
	}
}

func TestSplitterLabelBoundaries(t *testing.T) {
	s := NewSplitter(9)
	// ("ab","c") must differ from ("a","bc") — the separator byte matters.
	a := s.Stream("ab", "c")
	b := s.Stream("a", "bc")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("label boundary not respected")
	}
}

func TestChildSplitter(t *testing.T) {
	s := NewSplitter(11)
	c1 := s.Child("machine0")
	c2 := s.Child("machine0")
	if c1.Stream("x").Uint64() != c2.Stream("x").Uint64() {
		t.Fatal("child splitters with same label should match")
	}
	if s.Child("m0").Seed() == s.Child("m1").Seed() {
		t.Fatal("different children should have different seeds")
	}
}

func TestUniformityRough(t *testing.T) {
	// A coarse sanity check on the underlying generator: the mean of many
	// Float64 draws is near 0.5.
	r := New(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of uniforms = %v, want ≈0.5", mean)
	}
}

// Property: stream derivation is a pure function of (seed, labels).
func TestStreamPurityProperty(t *testing.T) {
	prop := func(seed uint64, l1, l2 string) bool {
		x := NewSplitter(seed).Stream(l1, l2).Uint64()
		y := NewSplitter(seed).Stream(l1, l2).Uint64()
		return x == y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
