package cluster

import (
	"strings"
	"testing"

	"uqsim/internal/des"
)

func threeRegions() []Region {
	return []Region{
		{Name: "east", Machines: []string{"m0", "m1"}},
		{Name: "west", Machines: []string{"m2", "m3"}},
		{Name: "eu", Machines: []string{"m4"}},
	}
}

func TestNewGeographyValidation(t *testing.T) {
	known := func(m string) bool { return strings.HasPrefix(m, "m") }
	cases := []struct {
		name    string
		regions []Region
		wantErr string
	}{
		{"empty", nil, "at least one region"},
		{"unnamed", []Region{{Machines: []string{"m0"}}}, "no name"},
		{"dup-name", []Region{
			{Name: "east", Machines: []string{"m0"}},
			{Name: "east", Machines: []string{"m1"}},
		}, `duplicate region "east"`},
		{"no-machines", []Region{{Name: "east"}}, "no machines"},
		{"unknown-machine", []Region{{Name: "east", Machines: []string{"x9"}}}, `unknown machine "x9"`},
		{"two-regions", []Region{
			{Name: "east", Machines: []string{"m0"}},
			{Name: "west", Machines: []string{"m0"}},
		}, `machine "m0" assigned to two regions`},
		{"twice-in-one", []Region{{Name: "east", Machines: []string{"m0", "m0"}}}, `lists machine "m0" twice`},
	}
	for _, tc := range cases {
		_, err := NewGeography(tc.regions, known)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	if _, err := NewGeography(threeRegions(), known); err != nil {
		t.Fatalf("valid geography rejected: %v", err)
	}
}

func TestGeographyLookups(t *testing.T) {
	g, err := NewGeography(threeRegions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.RegionOf("m2"); got != "west" {
		t.Fatalf("RegionOf(m2) = %q, want west", got)
	}
	if got := g.RegionOf("nope"); got != "" {
		t.Fatalf("RegionOf(nope) = %q, want empty", got)
	}
	if !g.HasRegion("eu") || g.HasRegion("mars") {
		t.Fatal("HasRegion wrong")
	}
	if n := len(g.Regions()); n != 3 {
		t.Fatalf("Regions() = %d entries, want 3", n)
	}
}

func TestGeographyWANAndNearest(t *testing.T) {
	g, err := NewGeography(threeRegions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetDefaultWAN(WANLink{Latency: 30 * des.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLink("east", "west", WANLink{Latency: 5 * des.Millisecond, PerKB: 10 * des.Microsecond}); err != nil {
		t.Fatal(err)
	}

	if d := g.Delay("east", "east", 4); d != 0 {
		t.Fatalf("intra-region delay = %v, want 0", d)
	}
	if d := g.Delay("east", "", 4); d != 0 {
		t.Fatalf("unassigned endpoint delay = %v, want 0", d)
	}
	want := 5*des.Millisecond + 4*10*des.Microsecond
	if d := g.Delay("west", "east", 4); d != want {
		t.Fatalf("east-west delay = %v, want %v (link must be symmetric)", d, want)
	}
	if d := g.Delay("east", "eu", 0); d != 30*des.Millisecond {
		t.Fatalf("default WAN delay = %v, want 30ms", d)
	}

	if got := g.Nearest("east"); len(got) != 3 || got[0] != "east" || got[1] != "west" || got[2] != "eu" {
		t.Fatalf("Nearest(east) = %v", got)
	}
	// west↔eu both use the default; ties break by declaration order.
	if got := g.Nearest("eu"); got[0] != "eu" || got[1] != "east" || got[2] != "west" {
		t.Fatalf("Nearest(eu) = %v", got)
	}
	if got := g.Nearest("mars"); got != nil {
		t.Fatalf("Nearest(unknown) = %v, want nil", got)
	}

	// The cache must reset when the WAN model changes.
	if err := g.SetLink("east", "eu", WANLink{Latency: des.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if got := g.Nearest("east"); got[1] != "eu" {
		t.Fatalf("Nearest(east) after relink = %v, want eu second", got)
	}

	if err := g.SetDefaultWAN(WANLink{Latency: -des.Millisecond}); err == nil {
		t.Fatal("negative default WAN latency accepted")
	}
	if err := g.SetLink("east", "west", WANLink{PerKB: -1}); err == nil {
		t.Fatal("negative per-KB cost accepted")
	}
	if err := g.SetLink("east", "mars", WANLink{}); err == nil {
		t.Fatal("unknown link region accepted")
	}
	if err := g.SetLink("east", "east", WANLink{}); err == nil {
		t.Fatal("self-link accepted")
	}
}
