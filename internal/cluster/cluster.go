// Package cluster models the physical substrate: machines with a fixed
// number of cores, DVFS frequency ranges with discrete steps, and auxiliary
// resource pools (disks, NICs) with bounded concurrency.
//
// Core occupancy is tracked by the service runtime; what cluster provides
// is capacity accounting (how many cores a microservice instance owns) and
// the frequency those cores currently run at, which scales processing
// times.
package cluster

import (
	"fmt"
	"math"
)

// FreqSpec describes a machine's DVFS range in MHz with a discrete step —
// e.g. the paper's Xeon E5-2660 v3: 1200–2600 MHz (Table II).
type FreqSpec struct {
	MinMHz  float64
	MaxMHz  float64
	StepMHz float64
}

// DefaultFreqSpec matches the validation platform of the paper.
var DefaultFreqSpec = FreqSpec{MinMHz: 1200, MaxMHz: 2600, StepMHz: 100}

// Clamp snaps mhz into the spec's range and onto its step grid.
func (f FreqSpec) Clamp(mhz float64) float64 {
	if f.MaxMHz <= 0 {
		return mhz // no DVFS modelled
	}
	if mhz < f.MinMHz {
		mhz = f.MinMHz
	}
	if mhz > f.MaxMHz {
		mhz = f.MaxMHz
	}
	if f.StepMHz > 0 {
		steps := math.Round((mhz - f.MinMHz) / f.StepMHz)
		mhz = f.MinMHz + steps*f.StepMHz
		if mhz > f.MaxMHz {
			mhz = f.MaxMHz
		}
	}
	return mhz
}

// Levels enumerates the discrete frequencies of the spec, ascending.
func (f FreqSpec) Levels() []float64 {
	if f.MaxMHz <= 0 || f.StepMHz <= 0 {
		return nil
	}
	var out []float64
	for m := f.MinMHz; m <= f.MaxMHz+1e-9; m += f.StepMHz {
		out = append(out, m)
	}
	return out
}

// Pool is an auxiliary resource with bounded concurrency (e.g. 2 disk
// spindles, a shared NIC DMA engine).
type Pool struct {
	Name     string
	Capacity int
	busy     int
}

// TryAcquire takes one unit if available, reporting success.
func (p *Pool) TryAcquire() bool {
	if p.busy >= p.Capacity {
		return false
	}
	p.busy++
	return true
}

// Release returns one unit. Releasing an idle pool panics: it indicates an
// accounting bug.
func (p *Pool) Release() {
	if p.busy <= 0 {
		panic(fmt.Sprintf("cluster: release of idle pool %q", p.Name))
	}
	p.busy--
}

// InUse reports current occupancy.
func (p *Pool) InUse() int { return p.busy }

// Machine is one server: a core budget, a DVFS spec, and auxiliary pools.
type Machine struct {
	Name     string
	NumCores int
	Freq     FreqSpec

	freeCores int
	allocs    []*Allocation
	pools     map[string]*Pool
}

// NewMachine creates a machine with the given core count and DVFS spec.
func NewMachine(name string, cores int, freq FreqSpec) *Machine {
	if cores < 1 {
		panic("cluster: machine needs at least one core")
	}
	return &Machine{
		Name:      name,
		NumCores:  cores,
		Freq:      freq,
		freeCores: cores,
		pools:     make(map[string]*Pool),
	}
}

// AddPool registers an auxiliary pool (e.g. "disk" with capacity 2).
func (m *Machine) AddPool(name string, capacity int) *Pool {
	if capacity < 1 {
		panic("cluster: pool needs positive capacity")
	}
	p := &Pool{Name: name, Capacity: capacity}
	m.pools[name] = p
	return p
}

// Pool looks up an auxiliary pool by name.
func (m *Machine) Pool(name string) (*Pool, bool) {
	p, ok := m.pools[name]
	return p, ok
}

// FreeCores reports unallocated cores.
func (m *Machine) FreeCores() int { return m.freeCores }

// Allocate pins n cores to the named owner (a microservice instance). The
// allocation starts at the machine's maximum frequency.
func (m *Machine) Allocate(owner string, n int) (*Allocation, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: allocation needs at least one core")
	}
	if n > m.freeCores {
		return nil, fmt.Errorf("cluster: machine %s has %d free cores, %s wants %d",
			m.Name, m.freeCores, owner, n)
	}
	m.freeCores -= n
	a := &Allocation{Machine: m, Owner: owner, Cores: n, freqMHz: m.nominalMHz()}
	m.allocs = append(m.allocs, a)
	return a, nil
}

func (m *Machine) nominalMHz() float64 {
	if m.Freq.MaxMHz > 0 {
		return m.Freq.MaxMHz
	}
	return 0
}

// Release returns an allocation's cores to the machine — the inverse of
// Allocate, used when a control plane retires a replica or replaces a
// dead one. Releasing an allocation the machine does not hold panics: it
// indicates a double free.
func (m *Machine) Release(a *Allocation) {
	for i, held := range m.allocs {
		if held == a {
			m.allocs = append(m.allocs[:i], m.allocs[i+1:]...)
			m.freeCores += a.Cores
			return
		}
	}
	panic(fmt.Sprintf("cluster: release of unknown allocation %q on %s", a.Owner, m.Name))
}

// Allocations reports all live allocations on the machine.
func (m *Machine) Allocations() []*Allocation { return m.allocs }

// Allocation is a set of cores pinned to one microservice instance, with a
// shared DVFS setting.
type Allocation struct {
	Machine *Machine
	Owner   string
	Cores   int

	freqMHz float64
}

// Freq reports the allocation's current frequency in MHz (0: no DVFS
// modelled, meaning processing times are used unscaled).
func (a *Allocation) Freq() float64 { return a.freqMHz }

// SetFreq changes the allocation's frequency, clamped and snapped to the
// machine's DVFS grid. It reports the frequency actually applied.
func (a *Allocation) SetFreq(mhz float64) float64 {
	a.freqMHz = a.Machine.Freq.Clamp(mhz)
	return a.freqMHz
}

// StepUp raises frequency by n DVFS steps; StepDown lowers it. Both report
// the new frequency.
func (a *Allocation) StepUp(n int) float64 {
	return a.SetFreq(a.freqMHz + float64(n)*a.Machine.Freq.StepMHz)
}

// StepDown lowers frequency by n DVFS steps and reports the new frequency.
func (a *Allocation) StepDown(n int) float64 {
	return a.SetFreq(a.freqMHz - float64(n)*a.Machine.Freq.StepMHz)
}

// SpeedFactor reports the multiplier applied to nominal processing times at
// the current frequency: nominal/current (≥1 when underclocked). Machines
// without DVFS report 1.
func (a *Allocation) SpeedFactor() float64 {
	nominal := a.Machine.nominalMHz()
	if nominal <= 0 || a.freqMHz <= 0 {
		return 1
	}
	return nominal / a.freqMHz
}

// Cluster is a named set of machines.
type Cluster struct {
	machines map[string]*Machine
	order    []string
}

// NewCluster returns an empty cluster.
func NewCluster() *Cluster {
	return &Cluster{machines: make(map[string]*Machine)}
}

// Add registers a machine; duplicate names are an error.
func (c *Cluster) Add(m *Machine) error {
	if _, ok := c.machines[m.Name]; ok {
		return fmt.Errorf("cluster: duplicate machine %q", m.Name)
	}
	c.machines[m.Name] = m
	c.order = append(c.order, m.Name)
	return nil
}

// Machine looks up a machine by name.
func (c *Cluster) Machine(name string) (*Machine, bool) {
	m, ok := c.machines[name]
	return m, ok
}

// Machines returns all machines in registration order.
func (c *Cluster) Machines() []*Machine {
	out := make([]*Machine, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.machines[n])
	}
	return out
}

// Size reports the number of machines.
func (c *Cluster) Size() int { return len(c.order) }
