package cluster

// PartitionIndex splits n machines into k balanced contiguous shards and
// returns the shard index of each machine position. Shard sizes differ by
// at most one, earlier shards take the remainder, and the mapping depends
// only on (n, k) — a parallel engine partitioning a cluster this way
// assigns machines to logical processes identically on every run. k is
// clamped to [1, n].
func PartitionIndex(n, k int) []int {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]int, n)
	base, rem := n/k, n%k
	pos := 0
	for shard := 0; shard < k; shard++ {
		size := base
		if shard < rem {
			size++
		}
		for i := 0; i < size; i++ {
			out[pos] = shard
			pos++
		}
	}
	return out
}

// Partition maps each machine name to its shard per PartitionIndex, in
// registration order. Model layers use it to place machine-local state
// (service instances, queues) on the owning logical process.
func (c *Cluster) Partition(k int) map[string]int {
	idx := PartitionIndex(c.Size(), k)
	out := make(map[string]int, c.Size())
	for i, name := range c.order {
		out[name] = idx[i]
	}
	return out
}
