package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFreqSpecClamp(t *testing.T) {
	f := DefaultFreqSpec // 1200–2600 step 100
	cases := map[float64]float64{
		1000: 1200,
		3000: 2600,
		1849: 1800,
		1851: 1900,
		1200: 1200,
		2600: 2600,
	}
	for in, want := range cases {
		if got := f.Clamp(in); got != want {
			t.Errorf("Clamp(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestFreqSpecNoDVFS(t *testing.T) {
	var f FreqSpec
	if got := f.Clamp(1234); got != 1234 {
		t.Fatalf("no-DVFS clamp changed value: %v", got)
	}
	if f.Levels() != nil {
		t.Fatal("no-DVFS levels should be nil")
	}
}

func TestFreqSpecLevels(t *testing.T) {
	levels := DefaultFreqSpec.Levels()
	if len(levels) != 15 {
		t.Fatalf("levels = %d, want 15 (1200..2600 step 100)", len(levels))
	}
	if levels[0] != 1200 || levels[len(levels)-1] != 2600 {
		t.Fatalf("levels range %v..%v", levels[0], levels[len(levels)-1])
	}
}

func TestPoolAcquireRelease(t *testing.T) {
	m := NewMachine("m0", 4, DefaultFreqSpec)
	p := m.AddPool("disk", 2)
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("should acquire up to capacity")
	}
	if p.TryAcquire() {
		t.Fatal("should fail beyond capacity")
	}
	if p.InUse() != 2 {
		t.Fatalf("in use = %d", p.InUse())
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("release should free capacity")
	}
	if got, ok := m.Pool("disk"); !ok || got != p {
		t.Fatal("pool lookup")
	}
	if _, ok := m.Pool("nope"); ok {
		t.Fatal("missing pool lookup should fail")
	}
}

func TestPoolReleaseIdlePanics(t *testing.T) {
	p := &Pool{Name: "x", Capacity: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	p.Release()
}

func TestMachineAllocation(t *testing.T) {
	m := NewMachine("m0", 10, DefaultFreqSpec)
	a, err := m.Allocate("nginx", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cores != 8 || m.FreeCores() != 2 {
		t.Fatalf("cores=%d free=%d", a.Cores, m.FreeCores())
	}
	if _, err := m.Allocate("memcached", 4); err == nil {
		t.Fatal("over-allocation should fail")
	}
	if _, err := m.Allocate("memcached", 2); err != nil {
		t.Fatal(err)
	}
	if len(m.Allocations()) != 2 {
		t.Fatal("allocations list")
	}
	if _, err := m.Allocate("x", 0); err == nil {
		t.Fatal("zero-core allocation should fail")
	}
}

func TestAllocationFrequency(t *testing.T) {
	m := NewMachine("m0", 4, DefaultFreqSpec)
	a, _ := m.Allocate("svc", 2)
	if a.Freq() != 2600 {
		t.Fatalf("initial freq = %v, want max", a.Freq())
	}
	if a.SpeedFactor() != 1 {
		t.Fatalf("nominal speed factor = %v", a.SpeedFactor())
	}
	got := a.SetFreq(1300)
	if got != 1300 {
		t.Fatalf("SetFreq → %v", got)
	}
	if math.Abs(a.SpeedFactor()-2.0) > 1e-12 {
		t.Fatalf("speed factor at half freq = %v, want 2", a.SpeedFactor())
	}
	a.StepDown(1)
	if a.Freq() != 1200 {
		t.Fatalf("StepDown → %v", a.Freq())
	}
	a.StepDown(5)
	if a.Freq() != 1200 {
		t.Fatalf("StepDown below min → %v", a.Freq())
	}
	a.StepUp(100)
	if a.Freq() != 2600 {
		t.Fatalf("StepUp above max → %v", a.Freq())
	}
}

func TestAllocationNoDVFSSpeedFactor(t *testing.T) {
	m := NewMachine("m0", 2, FreqSpec{})
	a, _ := m.Allocate("svc", 1)
	if a.SpeedFactor() != 1 {
		t.Fatalf("speed factor without DVFS = %v", a.SpeedFactor())
	}
}

func TestClusterRegistry(t *testing.T) {
	c := NewCluster()
	m0 := NewMachine("m0", 4, DefaultFreqSpec)
	m1 := NewMachine("m1", 4, DefaultFreqSpec)
	if err := c.Add(m0); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(m1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(NewMachine("m0", 2, DefaultFreqSpec)); err == nil {
		t.Fatal("duplicate machine should fail")
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
	if got, ok := c.Machine("m1"); !ok || got != m1 {
		t.Fatal("lookup m1")
	}
	ms := c.Machines()
	if len(ms) != 2 || ms[0] != m0 || ms[1] != m1 {
		t.Fatal("machines order")
	}
}

// Property: Clamp is idempotent and always lands on the DVFS grid.
func TestClampProperty(t *testing.T) {
	prop := func(mhz float64) bool {
		if math.IsNaN(mhz) || math.IsInf(mhz, 0) {
			return true
		}
		f := DefaultFreqSpec
		c := f.Clamp(mhz)
		if c < f.MinMHz || c > f.MaxMHz {
			return false
		}
		if f.Clamp(c) != c {
			return false
		}
		steps := (c - f.MinMHz) / f.StepMHz
		return math.Abs(steps-math.Round(steps)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolSurvivesJobDeathMidStage is the fault-injection regression: when
// an instance is killed while a job holds a pool unit, the unit is released
// exactly once by the deferred stage-completion event. The release protocol
// must neither leak the unit (capacity lost forever) nor release it twice
// (busy underflow, which panics).
func TestPoolSurvivesJobDeathMidStage(t *testing.T) {
	m := NewMachine("m0", 4, DefaultFreqSpec)
	p := m.AddPool("disk", 1)

	// Job acquires the unit, then its instance dies mid-stage. The kill
	// itself must NOT release the unit — the deferred completion event
	// owns the release.
	if !p.TryAcquire() {
		t.Fatal("acquire")
	}
	// (instance killed here — nothing happens to the pool)
	if p.InUse() != 1 {
		t.Fatalf("kill must not release; in use %d", p.InUse())
	}
	// The stale completion event fires later and performs the single
	// release, making the unit available again.
	p.Release()
	if p.InUse() != 0 {
		t.Fatalf("in use %d after deferred release", p.InUse())
	}
	if !p.TryAcquire() {
		t.Fatal("unit should be reusable after the owner died")
	}
	p.Release()

	// A second release for the same acquisition is an accounting bug and
	// must panic rather than silently corrupt capacity.
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	p.Release()
}
