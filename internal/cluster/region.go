package cluster

import (
	"fmt"
	"sort"

	"uqsim/internal/des"
)

// Region is one geographic site: a named group of machines connected by
// a cheap intra-region fabric. Unlike failure domains (which may
// overlap), regions partition the cluster — every machine belongs to at
// most one region, and geography-aware routing treats that assignment
// as the machine's home site.
type Region struct {
	Name     string
	Machines []string
}

// WANLink models the cost of one inter-region path: a fixed one-way
// propagation delay plus a per-KB serialization cost. Intra-region
// traffic never pays a WANLink.
type WANLink struct {
	Latency des.Time // one-way propagation delay
	PerKB   des.Time // additional delay per KB of request payload
}

func (l WANLink) validate() error {
	if l.Latency < 0 {
		return fmt.Errorf("negative WAN latency %v", l.Latency)
	}
	if l.PerKB < 0 {
		return fmt.Errorf("negative WAN per-KB cost %v", l.PerKB)
	}
	return nil
}

// delay is the total WAN cost of moving sizeKB across the link.
func (l WANLink) delay(sizeKB float64) des.Time {
	d := l.Latency
	if l.PerKB > 0 && sizeKB > 0 {
		d += des.Time(float64(l.PerKB) * sizeKB)
	}
	return d
}

// Geography is the region layer of the topology hierarchy: a disjoint
// machine→region assignment plus a WAN latency/bandwidth model between
// regions. A Geography is immutable once built except for the WAN
// parameters, which may be set before the simulation starts.
type Geography struct {
	regions   []Region
	index     map[string]int    // region name → declaration order
	byMachine map[string]string // machine → region name
	def       WANLink
	links     map[[2]string]WANLink // symmetric; key is sorted pair
	nearest   map[string][]string   // cached Nearest orders; reset on WAN edits
}

// NewGeography validates and indexes a region set. known reports
// whether a machine name exists in the cluster; pass nil to skip that
// check. Errors: duplicate region name, empty region, unknown machine,
// or a machine assigned to two regions.
func NewGeography(regions []Region, known func(string) bool) (*Geography, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("geography needs at least one region")
	}
	g := &Geography{
		index:     make(map[string]int, len(regions)),
		byMachine: make(map[string]string),
		links:     make(map[[2]string]WANLink),
	}
	for i, r := range regions {
		if r.Name == "" {
			return nil, fmt.Errorf("region %d has no name", i)
		}
		if _, dup := g.index[r.Name]; dup {
			return nil, fmt.Errorf("duplicate region %q", r.Name)
		}
		if len(r.Machines) == 0 {
			return nil, fmt.Errorf("region %q has no machines", r.Name)
		}
		for _, m := range r.Machines {
			if known != nil && !known(m) {
				return nil, fmt.Errorf("region %q: unknown machine %q", r.Name, m)
			}
			if prev, taken := g.byMachine[m]; taken {
				if prev == r.Name {
					return nil, fmt.Errorf("region %q lists machine %q twice", r.Name, m)
				}
				return nil, fmt.Errorf("machine %q assigned to two regions: %q and %q", m, prev, r.Name)
			}
			g.byMachine[m] = r.Name
		}
		g.index[r.Name] = i
		cp := Region{Name: r.Name, Machines: append([]string(nil), r.Machines...)}
		g.regions = append(g.regions, cp)
	}
	return g, nil
}

// Regions returns the regions in declaration order.
func (g *Geography) Regions() []Region { return g.regions }

// HasRegion reports whether name is a declared region.
func (g *Geography) HasRegion(name string) bool {
	_, ok := g.index[name]
	return ok
}

// RegionOf returns the home region of a machine, or "" if the machine
// has no region assignment.
func (g *Geography) RegionOf(machine string) string { return g.byMachine[machine] }

// SetDefaultWAN sets the WAN model used between every region pair that
// has no explicit link override.
func (g *Geography) SetDefaultWAN(l WANLink) error {
	if err := l.validate(); err != nil {
		return err
	}
	g.def = l
	g.nearest = nil
	return nil
}

// SetLink overrides the WAN model between one region pair. Links are
// symmetric: SetLink(a, b, l) also applies to b→a traffic.
func (g *Geography) SetLink(a, b string, l WANLink) error {
	if !g.HasRegion(a) {
		return fmt.Errorf("wan link: unknown region %q", a)
	}
	if !g.HasRegion(b) {
		return fmt.Errorf("wan link: unknown region %q", b)
	}
	if a == b {
		return fmt.Errorf("wan link: %q cannot link to itself", a)
	}
	if err := l.validate(); err != nil {
		return err
	}
	g.links[pairKey(a, b)] = l
	g.nearest = nil
	return nil
}

// Link returns the WAN model between two regions. Traffic within one
// region — or touching an unassigned endpoint — costs nothing.
func (g *Geography) Link(src, dst string) WANLink {
	if src == "" || dst == "" || src == dst {
		return WANLink{}
	}
	if l, ok := g.links[pairKey(src, dst)]; ok {
		return l
	}
	return g.def
}

// Delay is the WAN cost of moving sizeKB from src to dst region.
func (g *Geography) Delay(src, dst string, sizeKB float64) des.Time {
	return g.Link(src, dst).delay(sizeKB)
}

// Nearest returns every region name ordered by WAN latency from the
// given region, nearest first; from itself leads (latency zero) and
// ties break by declaration order. The result is cached and must not
// be mutated by the caller.
func (g *Geography) Nearest(from string) []string {
	if cached, ok := g.nearest[from]; ok {
		return cached
	}
	if !g.HasRegion(from) {
		return nil
	}
	order := make([]string, 0, len(g.regions))
	for _, r := range g.regions {
		order = append(order, r.Name)
	}
	sort.SliceStable(order, func(i, j int) bool {
		li, lj := g.Link(from, order[i]).Latency, g.Link(from, order[j]).Latency
		if li != lj {
			return li < lj
		}
		return g.index[order[i]] < g.index[order[j]]
	})
	if g.nearest == nil {
		g.nearest = make(map[string][]string)
	}
	g.nearest[from] = order
	return order
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}
