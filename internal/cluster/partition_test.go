package cluster

import "testing"

func TestPartitionIndexBalanced(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {10, 4}, {7, 3}, {5, 8}, {1000, 8}, {3, 0},
	} {
		idx := PartitionIndex(tc.n, tc.k)
		if len(idx) != tc.n {
			t.Fatalf("n=%d k=%d: %d entries", tc.n, tc.k, len(idx))
		}
		sizes := map[int]int{}
		prev := 0
		for i, s := range idx {
			if s < prev {
				t.Fatalf("n=%d k=%d: shard ids not nondecreasing at %d", tc.n, tc.k, i)
			}
			prev = s
			sizes[s]++
		}
		min, max := tc.n, 0
		for _, sz := range sizes {
			if sz < min {
				min = sz
			}
			if sz > max {
				max = sz
			}
		}
		if max-min > 1 {
			t.Fatalf("n=%d k=%d: shard sizes differ by %d", tc.n, tc.k, max-min)
		}
		want := tc.k
		if want < 1 {
			want = 1
		}
		if want > tc.n {
			want = tc.n
		}
		if len(sizes) != want {
			t.Fatalf("n=%d k=%d: %d shards, want %d", tc.n, tc.k, len(sizes), want)
		}
	}
}

func TestClusterPartitionFollowsRegistrationOrder(t *testing.T) {
	c := NewCluster()
	names := []string{"c", "a", "b", "d"}
	for _, n := range names {
		if err := c.Add(NewMachine(n, 2, FreqSpec{})); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Partition(2)
	if got["c"] != 0 || got["a"] != 0 || got["b"] != 1 || got["d"] != 1 {
		t.Fatalf("partition %v does not follow registration order", got)
	}
}
